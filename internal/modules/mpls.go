package modules

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
)

// MPLS models an MPLS module (§III-C). Neighbouring LSRs negotiate labels
// over the management channel (downstream label allocation: each module
// allocates the incoming label for traffic arriving from a given
// neighbour and tells that neighbour). Switch rules translate to the
// mpls-linux commands of Fig 8(a): labelspace/ilm/nhlfe/xc.
type MPLS struct {
	device.BaseModule

	mu        sync.Mutex
	labelBase uint32
	labelSeq  uint32
	upPipes   map[core.PipeID]*device.Pipe // guarded by mu
	dnPipes   map[core.PipeID]*device.Pipe // guarded by mu
	// neighbors holds per-peer label negotiation state keyed by the peer
	// module's ref string.
	neighbors map[string]*mplsNeighbor // guarded by mu
	// pushKeys and via per up-pipe expose the ingress handle to the IP
	// module above ({"mpls-key", "via"}).
	pushKey string
	pushVia string
	// initiatedAny tracks whether we initiated at least one label
	// exchange: the pure responder at the far end of the LSP reports
	// "lsp-established" to the NM (Table VI's final received message).
	initiatedAny bool
	responded    bool
	notified     bool
	modprobed    bool
	spacesSet    map[string]bool              // guarded by mu
	rules        []*device.SwitchRuleInstance // guarded by mu
	// ruleUndo maps an installed rule's id to the action removing the
	// ILM/NHLFE/XC entries it created.
	ruleUndo map[string]func() // guarded by mu
	// pendingReplies holds label-exchange replies we cannot send yet
	// because our own pipe toward the requester (and hence our link
	// address) does not exist yet; flushed on pipe attachment.
	pendingReplies []core.ModuleRef // guarded by mu
}

type mplsNeighbor struct {
	// MyInLabel is the label we allocated for traffic arriving from this
	// neighbour.
	MyInLabel uint32
	// PeerInLabel is the label the neighbour allocated for traffic we
	// send to it.
	PeerInLabel uint32
	// PeerLinkAddr is the neighbour's IP address on the shared link (the
	// NHLFE next hop).
	PeerLinkAddr netip.Addr
	HavePeer     bool
}

// mplsLabelMsg is the convey body of the label exchange.
type mplsLabelMsg struct {
	// Label is the sender's incoming label for traffic from the
	// receiver.
	Label uint32 `json:"label"`
	// LinkAddr is the sender's address on the shared link.
	LinkAddr string `json:"link_addr"`
	Reply    bool   `json:"reply"`
}

// NewMPLS creates an MPLS module. labelBase seeds this LSR's label
// allocator (the Fig 8 experiment uses 10001 on A, 2001 on B, 3001 on C).
func NewMPLS(svc device.Services, id core.ModuleID, labelBase uint32) *MPLS {
	return &MPLS{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameMPLS, svc.Device(), id),
			Svc:    svc,
		},
		labelBase: labelBase,
		upPipes:   make(map[core.PipeID]*device.Pipe),
		dnPipes:   make(map[core.PipeID]*device.Pipe),
		neighbors: make(map[string]*mplsNeighbor),
		spacesSet: make(map[string]bool),
		ruleUndo:  make(map[string]func()),
	}
}

// Abstraction implements device.Module (Table IV's MPLS row).
func (m *MPLS) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:      m.Ref(),
		Kind:     core.KindData,
		Up:       core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4}},
		Down:     core.PipeSpec{Connectable: []core.ModuleName{core.NameETH}},
		Peerable: []core.ModuleName{core.NameMPLS},
		Switch: core.SwitchSpec{
			Modes: []core.SwitchMode{
				core.SwDownUp, core.SwUpDown, core.SwDownDown,
			},
			StateSource: core.StateLocal,
		},
		PerfReporting: []string{"rx-packets/pipe", "tx-packets/pipe"},
		// The ingress NHLFE handle exposed to the module above via
		// listFieldsAndValues("pipe:<up>"). Advertising it tells the NM
		// that consumers embed values that can churn independently of
		// the consuming rule, so §II-E dependency maintenance must
		// watch them (installTrigger) and re-check embedded copies.
		HandleFields: []string{"mpls-key", "via"},
		// The path selector prefers MPLS because the abstraction
		// advertises good forwarding bandwidth (§III-C.1).
		Attributes: map[string]string{"forwarding": "fast"},
	}
}

// Actual implements device.Module.
func (m *MPLS) Actual() core.ModuleState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := core.ModuleState{Ref: m.Ref(), LowLevel: map[string]string{}}
	for id, p := range m.upPipes {
		st.Pipes = append(st.Pipes, core.PipeState{ID: id, End: core.EndUp, Other: p.Upper, Peer: p.LowerPeer, Status: p.Status})
	}
	for id, p := range m.dnPipes {
		st.Pipes = append(st.Pipes, core.PipeState{ID: id, End: core.EndDown, Other: p.Lower, Peer: p.UpperPeer, Status: p.Status})
	}
	for peer, n := range m.neighbors {
		st.LowLevel["labels:"+peer] = fmt.Sprintf("in=%d out=%d nexthop=%s", n.MyInLabel, n.PeerInLabel, n.PeerLinkAddr)
	}
	if m.pushKey != "" {
		st.LowLevel["nhlfe-key"] = m.pushKey
	}
	for _, r := range m.rules {
		st.SwitchRules = append(st.SwitchRules, core.SwitchRuleState{
			ID: r.ID, From: r.Rule.From, To: r.Rule.To, Match: r.Rule.Match, Via: r.Rule.Via,
			MatchResolved: r.MatchResolved, ViaResolved: r.ViaResolved,
		})
	}
	return st
}

// PipeAttached implements device.Module: a down pipe with a known MPLS
// peer triggers the label exchange (initiator = smaller ref).
func (m *MPLS) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	var (
		send bool
		peer core.ModuleRef
		body mplsLabelMsg
	)
	m.mu.Lock()
	switch side {
	case device.SideLower:
		m.upPipes[p.ID] = p
	case device.SideUpper:
		m.dnPipes[p.ID] = p
		peer = p.UpperPeer
		if !peer.IsZero() && peer.Name == core.NameMPLS {
			key := peer.String()
			if _, have := m.neighbors[key]; !have && m.Ref().String() < key {
				n := &mplsNeighbor{MyInLabel: m.labelBase + m.labelSeq}
				m.labelSeq++
				m.neighbors[key] = n
				m.initiatedAny = true
				body = mplsLabelMsg{Label: n.MyInLabel, LinkAddr: m.linkAddrLocked(p)}
				send = true
			}
		}
	}
	m.mu.Unlock()
	if send {
		_ = m.Svc.Convey(m.Ref(), peer, "mpls-label", body)
	}
	m.flushReplies()
	return nil
}

// linkAddrLocked finds this device's address on the link under the given
// down pipe. Caller holds m.mu (only reads kernel state).
func (m *MPLS) linkAddrLocked(p *device.Pipe) string {
	lower, ok := m.Svc.LocalModule(p.Lower.Module)
	if !ok {
		return ""
	}
	fields, err := lower.ListFields(string(p.ID))
	if err != nil || fields["dev"] == "" {
		return ""
	}
	if a, ok := m.Svc.Kernel().AddrOf(fields["dev"]); ok {
		return a.String()
	}
	return ""
}

// PipeDeleted implements device.Module: the pipe's switch rules (and
// their label-switching kernel state) go with it.
func (m *MPLS) PipeDeleted(p *device.Pipe, side device.PipeSide) error {
	m.mu.Lock()
	delete(m.upPipes, p.ID)
	delete(m.dnPipes, p.ID)
	var undos []func()
	kept := m.rules[:0]
	for _, r := range m.rules {
		if r.Rule.From == p.ID || r.Rule.To == p.ID {
			if u := m.ruleUndo[r.ID]; u != nil {
				undos = append(undos, u)
			}
			delete(m.ruleUndo, r.ID)
			continue
		}
		kept = append(kept, r)
	}
	m.rules = kept
	m.mu.Unlock()
	for _, u := range undos {
		u()
	}
	return nil
}

// DeleteRule removes a switch rule by id (invoked via delete()),
// removing the ILM/NHLFE/XC entries it installed.
func (m *MPLS) DeleteRule(id string) error {
	m.mu.Lock()
	for i, r := range m.rules {
		if r.ID != id {
			continue
		}
		m.rules = append(m.rules[:i], m.rules[i+1:]...)
		undo := m.ruleUndo[id]
		delete(m.ruleUndo, id)
		m.mu.Unlock()
		if undo != nil {
			undo()
		}
		return nil
	}
	m.mu.Unlock()
	return fmt.Errorf("%s: no switch rule %q", m.Ref(), id)
}

// nhlfeKeyInt parses the 0x-prefixed key string `mpls nhlfe add` printed.
func nhlfeKeyInt(s string) int {
	var v int
	if _, err := fmt.Sscanf(s, "0x%x", &v); err != nil {
		return -1
	}
	return v
}

// HandleConvey implements device.Module: the label exchange.
func (m *MPLS) HandleConvey(from core.ModuleRef, kind string, body []byte) error {
	if kind != "mpls-label" {
		return nil
	}
	var x mplsLabelMsg
	if err := json.Unmarshal(body, &x); err != nil {
		return err
	}
	addr, _ := netip.ParseAddr(x.LinkAddr)

	var (
		reply bool
		resp  mplsLabelMsg
	)
	m.mu.Lock()
	key := from.String()
	n, have := m.neighbors[key]
	if !have {
		// We are the responder: allocate our own in-label now.
		n = &mplsNeighbor{MyInLabel: m.labelBase + m.labelSeq}
		m.labelSeq++
		m.neighbors[key] = n
		m.responded = true
	}
	n.PeerInLabel = x.Label
	n.PeerLinkAddr = addr
	n.HavePeer = true
	if !x.Reply {
		// Find our down pipe toward this neighbour for our link address.
		// If that pipe does not exist yet (the NM configures devices in
		// path order, so the requester's batch usually precedes ours),
		// defer the reply until it does.
		var linkAddr string
		for _, p := range m.dnPipes {
			if p.UpperPeer == from {
				linkAddr = m.linkAddrLocked(p)
				break
			}
		}
		if linkAddr == "" {
			m.pendingReplies = append(m.pendingReplies, from)
		} else {
			resp = mplsLabelMsg{Label: n.MyInLabel, LinkAddr: linkAddr, Reply: true}
			reply = true
		}
	}
	m.mu.Unlock()
	if reply {
		_ = m.Svc.Convey(m.Ref(), from, "mpls-label", resp)
	}
	m.Svc.Kick()
	return nil
}

// flushReplies sends label-exchange replies that were waiting for our own
// pipes to exist.
func (m *MPLS) flushReplies() {
	type outMsg struct {
		to   core.ModuleRef
		body mplsLabelMsg
	}
	var outs []outMsg
	m.mu.Lock()
	var still []core.ModuleRef
	for _, peer := range m.pendingReplies {
		var linkAddr string
		for _, p := range m.dnPipes {
			if p.UpperPeer == peer {
				linkAddr = m.linkAddrLocked(p)
				break
			}
		}
		if linkAddr == "" {
			still = append(still, peer)
			continue
		}
		n := m.neighbors[peer.String()]
		if n == nil {
			continue
		}
		outs = append(outs, outMsg{peer, mplsLabelMsg{Label: n.MyInLabel, LinkAddr: linkAddr, Reply: true}})
	}
	m.pendingReplies = still
	m.mu.Unlock()
	for _, o := range outs {
		_ = m.Svc.Convey(m.Ref(), o.to, "mpls-label", o.body)
	}
}

// neighborFor returns negotiation state for the peer across a down pipe.
func (m *MPLS) neighborFor(p *device.Pipe) (*mplsNeighbor, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.neighbors[p.UpperPeer.String()]
	return n, ok
}

// InstallSwitchRule implements device.Module. Two shapes:
//
//   - edge ([up-pipe <=> down-pipe]): ingress NHLFE pushing the
//     neighbour's label (handle exposed to the IP module above) plus the
//     egress ILM delivering popped traffic to the customer gateway
//     (learned from the IP module above).
//   - transit ([down-pipe <=> down-pipe], Fig 8's router B): two
//     ILM->NHLFE swaps, one per direction.
func (m *MPLS) InstallSwitchRule(r *device.SwitchRuleInstance) error {
	m.mu.Lock()
	fromUp, fromIsUp := m.upPipes[r.Rule.From]
	toUp, toIsUp := m.upPipes[r.Rule.To]
	fromDn, fromIsDn := m.dnPipes[r.Rule.From]
	toDn, toIsDn := m.dnPipes[r.Rule.To]
	m.mu.Unlock()

	switch {
	case fromIsUp && toIsDn:
		return m.installEdge(r, fromUp, toDn)
	case toIsUp && fromIsDn:
		return m.installEdge(r, toUp, fromDn)
	case fromIsDn && toIsDn:
		return m.installTransit(r, fromDn, toDn)
	default:
		return fmt.Errorf("%s: switch rule pipes not attached to this module", m.Ref())
	}
}

// ensureBase loads the MPLS kernel modules and sets the labelspace on an
// interface once.
func (m *MPLS) ensureBase(dev string) error {
	k := m.Svc.Kernel()
	m.mu.Lock()
	needProbe := !m.modprobed
	m.modprobed = true
	needSpace := !m.spacesSet[dev]
	m.spacesSet[dev] = true
	m.mu.Unlock()
	if needProbe {
		if _, err := k.ExecScript("modprobe mpls\nmodprobe mpls4"); err != nil {
			return err
		}
	}
	if needSpace {
		if _, err := k.Exec(fmt.Sprintf("mpls labelspace set dev %s labelspace 0", dev)); err != nil {
			return err
		}
	}
	return nil
}

// devUnder resolves the kernel interface below a down pipe.
func (m *MPLS) devUnder(p *device.Pipe) (string, error) {
	lower, ok := m.Svc.LocalModule(p.Lower.Module)
	if !ok {
		return "", fmt.Errorf("%s: no lower module %s", m.Ref(), p.Lower)
	}
	fields, err := lower.ListFields(string(p.ID))
	if err != nil {
		return "", err
	}
	if fields["dev"] == "" {
		return "", device.ErrPending
	}
	return fields["dev"], nil
}

func (m *MPLS) installEdge(r *device.SwitchRuleInstance, up, dn *device.Pipe) error {
	n, ok := m.neighborFor(dn)
	if !ok || !n.HavePeer {
		return device.ErrPending
	}
	dev, err := m.devUnder(dn)
	if err != nil {
		return err
	}
	// Customer delivery next hop comes from the IP module above, which
	// learns it from its own [pipe => customer, gateway] rule.
	upper, ok := m.Svc.LocalModule(up.Upper.Module)
	if !ok {
		return fmt.Errorf("%s: no upper module %s", m.Ref(), up.Upper)
	}
	delivery, err := upper.ListFields("delivery")
	if err != nil {
		return err
	}
	if delivery["via"] == "" || delivery["dev"] == "" {
		return device.ErrPending
	}
	if err := m.ensureBase(dev); err != nil {
		return err
	}
	k := m.Svc.Kernel()

	// Egress: pop our in-label, deliver to the customer gateway
	// (Fig 8a's "MPLS LSP for traffic from S2->S1" block).
	if _, err := k.Exec(fmt.Sprintf("mpls ilm add label gen %d labelspace 0", n.MyInLabel)); err != nil {
		return err
	}
	out, err := k.Exec(fmt.Sprintf("mpls nhlfe add key 0 mtu 1500 instructions nexthop %s ipv4 %s",
		delivery["dev"], delivery["via"]))
	if err != nil {
		return err
	}
	egressKey := extractNHLFEKey(out)
	if _, err := k.Exec(fmt.Sprintf("mpls xc add ilm label gen %d ilm labelspace 0 nhlfe key %s",
		n.MyInLabel, egressKey)); err != nil {
		return err
	}

	// Ingress: NHLFE pushing the neighbour's label (Fig 8a's
	// "MPLS LSP for traffic from S1->S2" block). The IP module above
	// fetches the key via listFields("pipe:<up>") and emits the route.
	out, err = k.Exec(fmt.Sprintf("mpls nhlfe add key 0 mtu 1500 instructions push gen %d nexthop %s ipv4 %s",
		n.PeerInLabel, dev, n.PeerLinkAddr))
	if err != nil {
		return err
	}
	inLabel, ingressKey := n.MyInLabel, extractNHLFEKey(out)
	upComponent := "pipe:" + string(up.ID)
	m.mu.Lock()
	handleChanged := m.pushKey != ingressKey || m.pushVia != n.PeerLinkAddr.String()
	m.pushKey = ingressKey
	m.pushVia = n.PeerLinkAddr.String()
	m.rules = append(m.rules, r)
	m.ruleUndo[r.ID] = func() {
		k.DelILM(inLabel, 0)
		k.DelNHLFE(nhlfeKeyInt(egressKey))
		k.DelNHLFE(nhlfeKeyInt(ingressKey))
		m.mu.Lock()
		cleared := m.pushKey == ingressKey
		if cleared {
			m.pushKey, m.pushVia = "", ""
		}
		m.mu.Unlock()
		if cleared {
			// The exported handle is gone: fire §II-E triggers so the
			// NM learns any embedded copy (an IP route's NHLFE key) is
			// now dangling.
			m.Svc.FieldsChanged(m.Ref(), upComponent, map[string]string{})
		}
	}
	notify := m.responded && !m.initiatedAny && !m.notified
	if notify {
		m.notified = true
	}
	m.mu.Unlock()

	if notify {
		// Pure responder (the far end of the LSP): report establishment
		// to the NM — the single unsolicited "received" message in the
		// paper's Table VI accounting for MPLS/VLAN.
		_ = m.Svc.Notify(m.Ref(), "lsp-established", "egress configured")
	}
	if handleChanged {
		// Dependency maintenance (§II-E): the ingress handle consumers
		// embed (listFields("pipe:<up>")) has new values; fire any
		// installed triggers. FieldsChanged also kicks pending rules.
		m.Svc.FieldsChanged(m.Ref(), upComponent, map[string]string{
			"mpls-key": ingressKey, "via": n.PeerLinkAddr.String(),
		})
	} else {
		m.Svc.Kick()
	}
	return nil
}

func (m *MPLS) installTransit(r *device.SwitchRuleInstance, a, b *device.Pipe) error {
	na, okA := m.neighborFor(a)
	nb, okB := m.neighborFor(b)
	if !okA || !okB || !na.HavePeer || !nb.HavePeer {
		return device.ErrPending
	}
	devA, err := m.devUnder(a)
	if err != nil {
		return err
	}
	devB, err := m.devUnder(b)
	if err != nil {
		return err
	}
	if err := m.ensureBase(devA); err != nil {
		return err
	}
	if err := m.ensureBase(devB); err != nil {
		return err
	}
	k := m.Svc.Kernel()
	// Direction A->B: traffic from neighbour A arrives with our in-label
	// allocated for A, is swapped to B's in-label.
	swap := func(in *mplsNeighbor, out *mplsNeighbor, outDev string) (string, error) {
		if _, err := k.Exec(fmt.Sprintf("mpls ilm add label gen %d labelspace 0", in.MyInLabel)); err != nil {
			return "", err
		}
		o, err := k.Exec(fmt.Sprintf("mpls nhlfe add key 0 mtu 1500 instructions push gen %d nexthop %s ipv4 %s",
			out.PeerInLabel, outDev, out.PeerLinkAddr))
		if err != nil {
			return "", err
		}
		key := extractNHLFEKey(o)
		if _, err := k.Exec(fmt.Sprintf("mpls xc add ilm label gen %d ilm labelspace 0 nhlfe key %s",
			in.MyInLabel, key)); err != nil {
			return "", err
		}
		return key, nil
	}
	keyAB, err := swap(na, nb, devB)
	if err != nil {
		return err
	}
	keyBA, err := swap(nb, na, devA)
	if err != nil {
		return err
	}
	labA, labB := na.MyInLabel, nb.MyInLabel
	m.mu.Lock()
	m.rules = append(m.rules, r)
	m.ruleUndo[r.ID] = func() {
		k.DelILM(labA, 0)
		k.DelILM(labB, 0)
		k.DelNHLFE(nhlfeKeyInt(keyAB))
		k.DelNHLFE(nhlfeKeyInt(keyBA))
	}
	m.mu.Unlock()
	m.Svc.Kick()
	return nil
}

// extractNHLFEKey pulls the 0x-prefixed key out of `mpls nhlfe add`
// output (the script does it with `grep key | cut -c 17-26`).
func extractNHLFEKey(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "key") && len(line) >= 26 {
			return line[16:26]
		}
	}
	return ""
}

// ListFields implements device.Module: the ingress handle for the IP
// module above.
func (m *MPLS) ListFields(component string) (map[string]string, error) {
	comp := strings.TrimPrefix(component, "pipe:")
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.upPipes[core.PipeID(comp)]; ok || comp == "self" {
		out := map[string]string{}
		if m.pushKey != "" {
			out["mpls-key"] = m.pushKey
			out["via"] = m.pushVia
		}
		return out, nil
	}
	if _, ok := m.dnPipes[core.PipeID(comp)]; ok {
		return map[string]string{}, nil
	}
	return nil, fmt.Errorf("%s: unknown component %q", m.Ref(), component)
}

// SelfTest implements device.Module: verifies the neighbour's link
// address answers probes.
func (m *MPLS) SelfTest(pipe core.PipeID) (bool, string) {
	m.mu.Lock()
	p, ok := m.dnPipes[pipe]
	m.mu.Unlock()
	if !ok {
		return false, fmt.Sprintf("no down pipe %s", pipe)
	}
	n, okN := m.neighborFor(p)
	if !okN || !n.HavePeer {
		return false, "labels not negotiated"
	}
	k := m.Svc.Kernel()
	token := probeToken()
	before := len(k.ProbeReplies())
	if err := k.SendProbe(n.PeerLinkAddr, token); err != nil {
		return false, err.Error()
	}
	for _, tok := range k.ProbeReplies()[before:] {
		if tok == token {
			return true, fmt.Sprintf("neighbour %s reachable", n.PeerLinkAddr)
		}
	}
	return false, fmt.Sprintf("neighbour %s unreachable", n.PeerLinkAddr)
}
