package kernel

import (
	"conman/internal/packet"
)

// PortMode is the 802.1Q role of a switch port.
type PortMode uint8

const (
	ModeUnconfigured PortMode = iota
	// ModeAccess ports belong to one VLAN and carry untagged frames.
	ModeAccess
	// ModeTrunk ports carry 802.1Q-tagged frames for their allowed VLANs.
	ModeTrunk
	// ModeDot1qTunnel ports are QinQ tunnel endpoints: everything
	// arriving (including customer-tagged frames) is mapped into the
	// access VLAN, and the outer tag is pushed/popped at trunk/tunnel
	// boundaries (Cisco's `switchport mode dot1q-tunnel`, Fig 9).
	ModeDot1qTunnel
)

func (m PortMode) String() string {
	switch m {
	case ModeAccess:
		return "access"
	case ModeTrunk:
		return "trunk"
	case ModeDot1qTunnel:
		return "dot1q-tunnel"
	default:
		return "unconfigured"
	}
}

type switchPort struct {
	Mode      PortMode
	AccessVID uint16
	TrunkVIDs map[uint16]bool
}

type vlanDef struct {
	Name string
	MTU  int
}

type fdbKey struct {
	vid uint16
	mac packet.MAC
}

type bridgeState struct {
	vlans     map[uint16]*vlanDef
	ports     map[string]*switchPort
	fdb       map[fdbKey]string
	tagNative bool
	catosCtx  string // current `interface` context for CatOS config
}

func newBridgeState() bridgeState {
	return bridgeState{
		vlans: make(map[uint16]*vlanDef),
		ports: make(map[string]*switchPort),
		fdb:   make(map[fdbKey]string),
	}
}

func (b *bridgeState) port(name string) *switchPort {
	p, ok := b.ports[name]
	if !ok {
		p = &switchPort{TrunkVIDs: make(map[uint16]bool)}
		b.ports[name] = p
	}
	return p
}

// DefineVLAN creates or updates a VLAN definition.
func (k *Kernel) DefineVLAN(vid uint16, name string, mtu int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.bridge.vlans[vid]
	if !ok {
		v = &vlanDef{}
		k.bridge.vlans[vid] = v
	}
	if name != "" {
		v.Name = name
	}
	if mtu > 0 {
		v.MTU = mtu
	}
}

// SetPortAccess configures a switch port as an access (or QinQ tunnel)
// member of a VLAN. Membership changes flush the VLAN's learned
// entries (see flushVID).
func (k *Kernel) SetPortAccess(port string, vid uint16, tunnel bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := k.bridge.port(port)
	p.AccessVID = vid
	if tunnel {
		p.Mode = ModeDot1qTunnel
	} else {
		p.Mode = ModeAccess
	}
	k.bridge.flushVID(vid)
}

// SetPortTrunk adds a VLAN to a port's trunk allow-list and flushes the
// VLAN's learned entries (see flushVID).
func (k *Kernel) SetPortTrunk(port string, vid uint16) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := k.bridge.port(port)
	p.Mode = ModeTrunk
	p.TrunkVIDs[vid] = true
	k.bridge.flushVID(vid)
}

// flushVID drops a VLAN's learned forwarding entries. Any membership
// change is a topology change for that VLAN: entries learned under the
// old membership may point away from the new path (a switch that keeps
// a port in the VLAN for one service while another service's path
// swings to a different port would otherwise steer the second
// service's unicast frames down the old direction forever — the
// simulator has no aging clock to expire them). Caller holds k.mu.
func (b *bridgeState) flushVID(vid uint16) {
	for key := range b.fdb {
		if key.vid == vid {
			delete(b.fdb, key)
		}
	}
}

// ClearPortVLAN undoes a port's membership in a VLAN: access/QinQ ports
// of the VLAN become unconfigured; trunk ports drop the VLAN from their
// allow-list (and become unconfigured when the list empties). Learned
// FDB entries for the VLAN are flushed.
func (k *Kernel) ClearPortVLAN(port string, vid uint16) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.bridge.ports[port]
	if ok {
		switch p.Mode {
		case ModeAccess, ModeDot1qTunnel:
			if p.AccessVID == vid {
				p.Mode = ModeUnconfigured
				p.AccessVID = 0
			}
		case ModeTrunk:
			delete(p.TrunkVIDs, vid)
			if len(p.TrunkVIDs) == 0 {
				p.Mode = ModeUnconfigured
			}
		}
	}
	k.bridge.flushVID(vid)
}

// FlushFDB drops every learned forwarding entry, as a bridge fast-ages
// its table on a topology change (802.1D's topology-change
// notification). Without this, a unicast flow whose path moved keeps
// following entries learned before the failure — frames steered into a
// dead link with no aging clock to ever recover them.
func (k *Kernel) FlushFDB() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.bridge.fdb = make(map[fdbKey]string)
}

// UndefineVLAN removes a VLAN definition and flushes its FDB entries.
// Port memberships are cleared separately via ClearPortVLAN.
func (k *Kernel) UndefineVLAN(vid uint16) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.bridge.vlans, vid)
	for key := range k.bridge.fdb {
		if key.vid == vid {
			delete(k.bridge.fdb, key)
		}
	}
}

// PortModeOf reports a switch port's configuration.
func (k *Kernel) PortModeOf(port string) (PortMode, uint16) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.bridge.ports[port]
	if !ok {
		return ModeUnconfigured, 0
	}
	return p.Mode, p.AccessVID
}

// VLANOf returns a VLAN definition.
func (k *Kernel) VLANOf(vid uint16) (name string, mtu int, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, found := k.bridge.vlans[vid]
	if !found {
		return "", 0, false
	}
	return v.Name, v.MTU, true
}

// bridgeInput handles one frame on a switch-role device.
func (k *Kernel) bridgeInput(ingress string, eth packet.Ethernet, frame []byte) {
	k.mu.Lock()
	sp, ok := k.bridge.ports[ingress]
	if !ok || sp.Mode == ModeUnconfigured {
		k.mu.Unlock()
		return
	}

	var vid uint16
	inner := frame
	switch sp.Mode {
	case ModeAccess, ModeDot1qTunnel:
		vid = sp.AccessVID
		// The whole frame — customer tags included — is the payload of
		// the VLAN (that is the QinQ tunnel behaviour; plain access
		// ports carry untagged frames, which look identical here).
	case ModeTrunk:
		if eth.Type != packet.EtherTypeDot1Q {
			k.mu.Unlock()
			return // untagged frame on trunk without native VLAN: drop
		}
		tag, _, _, err := packet.DecodeDot1Q(frame[14:])
		if err != nil || !sp.TrunkVIDs[tag.VID] {
			k.mu.Unlock()
			return
		}
		vid = tag.VID
		// Strip the outer tag: 12 bytes of MACs + inner EtherType + rest.
		stripped := make([]byte, 0, len(frame)-4)
		stripped = append(stripped, frame[:12]...)
		stripped = append(stripped, frame[16:]...)
		inner = stripped
	}

	// Enforce the VLAN MTU (the paper's `mtu 1504` line exists exactly so
	// QinQ inner tags fit).
	if v, ok := k.bridge.vlans[vid]; ok && v.MTU > 0 && len(inner)-14 > v.MTU {
		k.mu.Unlock()
		return
	}

	// Learn the source, then pick egress ports.
	k.bridge.fdb[fdbKey{vid, eth.Src}] = ingress
	var egress []string
	if !eth.Dst.IsBroadcast() {
		if p, ok := k.bridge.fdb[fdbKey{vid, eth.Dst}]; ok && p != ingress {
			egress = []string{p}
		}
	}
	if egress == nil {
		for name, p := range k.bridge.ports {
			if name == ingress {
				continue
			}
			switch p.Mode {
			case ModeAccess, ModeDot1qTunnel:
				if p.AccessVID == vid {
					egress = append(egress, name)
				}
			case ModeTrunk:
				if p.TrunkVIDs[vid] {
					egress = append(egress, name)
				}
			}
		}
	}
	// Snapshot modes for the sends outside the lock.
	type out struct {
		port string
		mode PortMode
	}
	outs := make([]out, 0, len(egress))
	for _, name := range egress {
		outs = append(outs, out{name, k.bridge.ports[name].Mode})
		if i, ok := k.ifaces[name]; ok {
			i.TxPkts++
		}
	}
	k.mu.Unlock()

	for _, o := range outs {
		switch o.mode {
		case ModeAccess, ModeDot1qTunnel:
			_ = k.send(o.port, inner)
		case ModeTrunk:
			tagged := make([]byte, 0, len(inner)+4)
			tagged = append(tagged, inner[:12]...)
			var tag [4]byte
			tag[0], tag[1] = byte(packet.EtherTypeDot1Q>>8), byte(packet.EtherTypeDot1Q&0xff)
			tag[2], tag[3] = byte(vid>>8), byte(vid&0xff)
			tagged = append(tagged, tag[:]...)
			tagged = append(tagged, inner[12:]...)
			_ = k.send(o.port, tagged)
		}
	}
}
