package kernel_test

import (
	"net/netip"
	"strings"
	"testing"

	"conman/internal/core"
	"conman/internal/kernel"
	"conman/internal/netsim"
	"conman/internal/packet"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// rig wires kernels to a netsim network.
type rig struct {
	t   *testing.T
	net *netsim.Network
	ks  map[core.DeviceID]*kernel.Kernel
}

func newRig(t *testing.T) *rig {
	return &rig{t: t, net: netsim.New(), ks: map[core.DeviceID]*kernel.Kernel{}}
}

func (r *rig) add(id core.DeviceID, role kernel.Role, ports ...string) *kernel.Kernel {
	dev := id
	k := kernel.New(dev, role,
		func(port string, frame []byte) error {
			return r.net.Send(netsim.PortID{Device: dev, Name: port}, frame)
		},
		func(port string) (packet.MAC, bool) {
			m, err := r.net.PortMAC(netsim.PortID{Device: dev, Name: port})
			return m, err == nil
		})
	r.net.AddDevice(id, k)
	for _, p := range ports {
		if _, err := r.net.AddPort(id, p); err != nil {
			r.t.Fatal(err)
		}
		k.AddPhysical(p)
	}
	r.ks[id] = k
	return k
}

func (r *rig) connect(name string, a, b netsim.PortID) {
	if _, err := r.net.Connect(name, a, b); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) exec(id core.DeviceID, script string) string {
	out, err := r.ks[id].ExecScript(script)
	if err != nil {
		r.t.Fatalf("exec on %s: %v", id, err)
	}
	return out
}

func port(d core.DeviceID, n string) netsim.PortID { return netsim.PortID{Device: d, Name: n} }

// customerEdge configures a customer router: uplink + site LAN + default
// route toward the ISP.
func customerEdge(t *testing.T, k *kernel.Kernel, uplink string, uplinkAddr netip.Prefix, lan netip.Prefix, gw netip.Addr) {
	t.Helper()
	if err := k.AddAddr(uplink, uplinkAddr); err != nil {
		t.Fatal(err)
	}
	k.AddLAN("lan0", lan)
	k.SetIPForward(true)
	k.SetProxyARP(true)
	if err := k.AddRoute("", kernel.Route{Via: gw, Dev: uplink, MPLSKey: -1}); err != nil {
		t.Fatal(err)
	}
}

// buildGRERig builds the Fig 4 testbed D-A-B-C-E and configures the GRE
// VPN with the paper's Fig 7(a) script on A (mirrored on C).
func buildGRERig(t *testing.T) *rig {
	r := newRig(t)
	d := r.add("D", kernel.RoleRouter, "eth0")
	a := r.add("A", kernel.RoleRouter, "eth1", "eth2")
	b := r.add("B", kernel.RoleRouter, "eth0", "eth1")
	c := r.add("C", kernel.RoleRouter, "eth1", "eth2")
	e := r.add("E", kernel.RoleRouter, "eth0")
	r.connect("DA", port("D", "eth0"), port("A", "eth1"))
	r.connect("AB", port("A", "eth2"), port("B", "eth0"))
	r.connect("BC", port("B", "eth1"), port("C", "eth2"))
	r.connect("CE", port("C", "eth1"), port("E", "eth0"))

	customerEdge(t, d, "eth0", pfx("192.168.0.1/24"), pfx("10.0.1.1/24"), ip("192.168.0.2"))
	customerEdge(t, e, "eth0", pfx("192.168.1.1/24"), pfx("10.0.2.1/24"), ip("192.168.1.2"))

	for _, as := range []struct {
		k     *kernel.Kernel
		iface string
		p     netip.Prefix
	}{
		{a, "eth1", pfx("192.168.0.2/24")},
		{a, "eth2", pfx("204.9.168.1/24")},
		{b, "eth0", pfx("204.9.168.2/24")},
		{b, "eth1", pfx("204.9.169.2/24")},
		{c, "eth2", pfx("204.9.169.1/24")},
		{c, "eth1", pfx("192.168.1.2/24")},
	} {
		if err := as.k.AddAddr(as.iface, as.p); err != nil {
			t.Fatal(err)
		}
	}
	b.SetIPForward(true)

	// Fig 7(a), verbatim.
	r.exec("A", `#!/bin/bash
# Insert the GRE-IP kernel module
insmod /lib/modules/2.6.14-2/ip_gre.ko
# Create the GRE tunnel with the appropriate key
ip tunnel add name greA mode gre remote 204.9.169.1 local 204.9.168.1 ikey 1001 okey 2001 icsum ocsum iseq oseq
ifconfig greA 192.168.3.1
# Enable Routing
echo 1 > /proc/sys/net/ipv4/ip_forward
# Create IP routing from customer to tunnel
echo 202 tun-1-2 >> /etc/iproute2/rt_tables
ip rule add to 10.0.2.0/24 table tun-1-2
ip route add default dev greA table tun-1-2
# Create IP routing from tunnel to customer
echo 203 tun-2-1 >> /etc/iproute2/rt_tables
ip rule add iff greA table tun-2-1
ip route add default dev eth1 table tun-2-1
ip route add to 204.9.169.1 via 204.9.168.2 dev eth2`)

	// Mirror configuration on C.
	r.exec("C", `insmod /lib/modules/2.6.14-2/ip_gre.ko
ip tunnel add name greC mode gre remote 204.9.168.1 local 204.9.169.1 ikey 2001 okey 1001 icsum ocsum iseq oseq
ifconfig greC 192.168.3.2
echo 1 > /proc/sys/net/ipv4/ip_forward
echo 202 tun-1-2 >> /etc/iproute2/rt_tables
ip rule add to 10.0.1.0/24 table tun-1-2
ip route add default dev greC table tun-1-2
echo 203 tun-2-1 >> /etc/iproute2/rt_tables
ip rule add iff greC table tun-2-1
ip route add default dev eth1 table tun-2-1
ip route add to 204.9.168.1 via 204.9.169.2 dev eth2`)
	return r
}

func TestGREVPNEndToEnd(t *testing.T) {
	r := buildGRERig(t)
	r.net.EnableCapture("AB")

	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 42); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("E echoes = %v", got)
	}
	if got := r.ks["D"].ProbeReplies(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("D replies = %v", got)
	}

	// On-the-wire encapsulation between A and B must be GRE with the
	// negotiated key, sequence numbers and checksums (Fig 7).
	var sawGRE bool
	for _, c := range r.net.Captures("AB") {
		d, err := packet.Decode(c.Bytes, packet.LayerTypeEthernet)
		if err != nil {
			continue
		}
		if l := d.Layer(packet.LayerTypeGRE); l != nil {
			g := l.(packet.GRE)
			if !g.KeyPresent || !g.SeqPresent || !g.ChecksumPresent {
				t.Fatalf("GRE options missing: %+v", g)
			}
			if g.Key != 2001 && g.Key != 1001 {
				t.Fatalf("unexpected GRE key %d", g.Key)
			}
			sawGRE = true
		}
	}
	if !sawGRE {
		t.Fatal("no GRE frames captured on the A-B link")
	}
}

func TestGREVPNProxyARPHostInSite(t *testing.T) {
	r := buildGRERig(t)
	// Probe an address inside S2's prefix that is not E's own: proxy ARP
	// and the connected LAN route deliver it to the site.
	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.77"), 7); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("E echoes = %v", got)
	}
}

func TestGREVPNIsolation(t *testing.T) {
	r := buildGRERig(t)
	// Traffic to a prefix outside the VPN must not leak into the tunnel.
	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("8.8.8.8"), 99); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 0 {
		t.Fatalf("leak: E saw %v", got)
	}
	if got := r.ks["D"].ProbeReplies(); len(got) != 0 {
		t.Fatalf("unexpected reply %v", got)
	}
}

func TestGREInOrderDeliveryDropsReplays(t *testing.T) {
	r := buildGRERig(t)
	// Prime the tunnel so A's greA has accepted a high sequence number.
	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 1); err != nil {
		t.Fatal(err)
	}
	echoesBefore := len(r.ks["D"].ProbeEchoes())

	// Hand-craft a GRE packet from C to A carrying a probe to the S1
	// site, with a stale sequence number: the iseq option must drop it.
	inner, err := packet.Serialize(nil,
		packet.IPv4{TTL: 9, Proto: packet.ProtoProbe, Src: ip("10.0.2.1"), Dst: ip("10.0.1.1")},
		packet.Probe{Op: packet.ProbeEcho, Token: 1234})
	if err != nil {
		t.Fatal(err)
	}
	bMAC, _ := r.net.PortMAC(port("B", "eth0"))
	aMAC, _ := r.net.PortMAC(port("A", "eth2"))
	stale := uint32(0) // C's tunnel already transmitted seq >= 0
	frame, err := packet.Serialize(inner,
		packet.Ethernet{Dst: aMAC, Src: bMAC, Type: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 62, Proto: packet.ProtoGRE, Src: ip("204.9.169.1"), Dst: ip("204.9.168.1")},
		packet.GRE{ChecksumPresent: true, KeyPresent: true, Key: 1001, SeqPresent: true, Seq: stale, Proto: packet.EtherTypeIPv4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.net.Send(port("B", "eth0"), frame); err != nil {
		t.Fatal(err)
	}
	if got := len(r.ks["D"].ProbeEchoes()); got != echoesBefore {
		t.Fatalf("stale-seq packet was delivered (echoes %d -> %d)", echoesBefore, got)
	}

	// The same packet with a fresh sequence number must pass.
	frame2, err := packet.Serialize(inner,
		packet.Ethernet{Dst: aMAC, Src: bMAC, Type: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 62, Proto: packet.ProtoGRE, Src: ip("204.9.169.1"), Dst: ip("204.9.168.1")},
		packet.GRE{ChecksumPresent: true, KeyPresent: true, Key: 1001, SeqPresent: true, Seq: 1 << 20, Proto: packet.EtherTypeIPv4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.net.Send(port("B", "eth0"), frame2); err != nil {
		t.Fatal(err)
	}
	if got := len(r.ks["D"].ProbeEchoes()); got != echoesBefore+1 {
		t.Fatalf("fresh-seq packet was not delivered")
	}
}

func TestGREWrongKeyDropped(t *testing.T) {
	r := buildGRERig(t)
	inner, _ := packet.Serialize(nil,
		packet.IPv4{TTL: 9, Proto: packet.ProtoProbe, Src: ip("10.0.2.1"), Dst: ip("10.0.1.1")},
		packet.Probe{Op: packet.ProbeEcho, Token: 5})
	bMAC, _ := r.net.PortMAC(port("B", "eth0"))
	aMAC, _ := r.net.PortMAC(port("A", "eth2"))
	frame, _ := packet.Serialize(inner,
		packet.Ethernet{Dst: aMAC, Src: bMAC, Type: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 62, Proto: packet.ProtoGRE, Src: ip("204.9.169.1"), Dst: ip("204.9.168.1")},
		packet.GRE{ChecksumPresent: true, KeyPresent: true, Key: 7777, SeqPresent: true, Seq: 1 << 21, Proto: packet.EtherTypeIPv4})
	if err := r.net.Send(port("B", "eth0"), frame); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["D"].ProbeEchoes(); len(got) != 0 {
		t.Fatalf("wrong-key packet delivered: %v", got)
	}
}

// buildMPLSRig configures the Fig 8 MPLS LSP across A, B, C.
func buildMPLSRig(t *testing.T) *rig {
	r := newRig(t)
	d := r.add("D", kernel.RoleRouter, "eth0")
	a := r.add("A", kernel.RoleRouter, "eth1", "eth2")
	b := r.add("B", kernel.RoleRouter, "eth0", "eth1")
	c := r.add("C", kernel.RoleRouter, "eth1", "eth2")
	e := r.add("E", kernel.RoleRouter, "eth0")
	r.connect("DA", port("D", "eth0"), port("A", "eth1"))
	r.connect("AB", port("A", "eth2"), port("B", "eth0"))
	r.connect("BC", port("B", "eth1"), port("C", "eth2"))
	r.connect("CE", port("C", "eth1"), port("E", "eth0"))

	customerEdge(t, d, "eth0", pfx("192.168.0.1/24"), pfx("10.0.1.1/24"), ip("192.168.0.2"))
	customerEdge(t, e, "eth0", pfx("192.168.1.1/24"), pfx("10.0.2.1/24"), ip("192.168.1.2"))
	for _, as := range []struct {
		k     *kernel.Kernel
		iface string
		p     netip.Prefix
	}{
		{a, "eth1", pfx("192.168.0.2/24")},
		{a, "eth2", pfx("204.9.168.1/24")},
		{b, "eth0", pfx("204.9.168.2/24")},
		{b, "eth1", pfx("204.9.169.2/24")},
		{c, "eth2", pfx("204.9.169.1/24")},
		{c, "eth1", pfx("192.168.1.2/24")},
	} {
		if err := as.k.AddAddr(as.iface, as.p); err != nil {
			t.Fatal(err)
		}
	}

	// Fig 8(a) on A, with the backtick key capture done by the harness
	// the way the shell script does it.
	r.exec("A", "modprobe mpls\nmodprobe mpls4\nmpls labelspace set dev eth2 labelspace 0\nmpls ilm add label gen 10001 labelspace 0")
	keyS2S1 := extractKey(t, r.exec("A", "mpls nhlfe add key 0 mtu 1500 instructions nexthop eth1 ipv4 192.168.0.1"))
	r.exec("A", "mpls xc add ilm label gen 10001 ilm labelspace 0 nhlfe key "+keyS2S1)
	keyS1S2 := extractKey(t, r.exec("A", "mpls nhlfe add key 0 mtu 1500 instructions push gen 2001 nexthop eth2 ipv4 204.9.168.2"))
	r.exec("A", "echo 1 > /proc/sys/net/ipv4/ip_forward\nip route add 10.0.2.0/24 via 204.9.168.2 mpls "+keyS1S2)

	// B: transit LSR, swap 2001->3001 (S1->S2) and 4001->10001 (S2->S1).
	r.exec("B", "modprobe mpls\nmodprobe mpls4\nmpls labelspace set dev eth0 labelspace 0\nmpls labelspace set dev eth1 labelspace 0\nmpls ilm add label gen 2001 labelspace 0\nmpls ilm add label gen 4001 labelspace 0")
	kb1 := extractKey(t, r.exec("B", "mpls nhlfe add key 0 mtu 1500 instructions push gen 3001 nexthop eth1 ipv4 204.9.169.1"))
	r.exec("B", "mpls xc add ilm label gen 2001 ilm labelspace 0 nhlfe key "+kb1)
	kb2 := extractKey(t, r.exec("B", "mpls nhlfe add key 0 mtu 1500 instructions push gen 10001 nexthop eth0 ipv4 204.9.168.1"))
	r.exec("B", "mpls xc add ilm label gen 4001 ilm labelspace 0 nhlfe key "+kb2)

	// C: egress for S1->S2, ingress for S2->S1.
	r.exec("C", "modprobe mpls\nmodprobe mpls4\nmpls labelspace set dev eth2 labelspace 0\nmpls ilm add label gen 3001 labelspace 0")
	kc1 := extractKey(t, r.exec("C", "mpls nhlfe add key 0 mtu 1500 instructions nexthop eth1 ipv4 192.168.1.1"))
	r.exec("C", "mpls xc add ilm label gen 3001 ilm labelspace 0 nhlfe key "+kc1)
	kc2 := extractKey(t, r.exec("C", "mpls nhlfe add key 0 mtu 1500 instructions push gen 4001 nexthop eth2 ipv4 204.9.169.2"))
	r.exec("C", "echo 1 > /proc/sys/net/ipv4/ip_forward\nip route add 10.0.1.0/24 via 204.9.169.2 mpls "+kc2)
	return r
}

// extractKey mimics Fig 8a's `grep key | cut -c 17-26`.
func extractKey(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "key") && len(line) >= 26 {
			return line[16:26]
		}
	}
	t.Fatalf("no key in output %q", out)
	return ""
}

func TestMPLSVPNEndToEnd(t *testing.T) {
	r := buildMPLSRig(t)
	r.net.EnableCapture("AB")
	r.net.EnableCapture("BC")

	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 314); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 1 || got[0] != 314 {
		t.Fatalf("E echoes = %v", got)
	}
	if got := r.ks["D"].ProbeReplies(); len(got) != 1 || got[0] != 314 {
		t.Fatalf("D replies = %v", got)
	}

	// Label 2001 on A-B, label 3001 on B-C (the swap at B).
	wantLabel := func(medium string, label uint32) {
		for _, c := range r.net.Captures(medium) {
			d, err := packet.Decode(c.Bytes, packet.LayerTypeEthernet)
			if err != nil {
				continue
			}
			if l := d.Layer(packet.LayerTypeMPLS); l != nil {
				m := l.(packet.MPLS)
				if m.Entries[0].Label == label {
					return
				}
			}
		}
		t.Fatalf("no MPLS frame with label %d on %s", label, medium)
	}
	wantLabel("AB", 2001)
	wantLabel("BC", 3001)
}

func TestMPLSUnknownLabelDropped(t *testing.T) {
	r := buildMPLSRig(t)
	inner, _ := packet.Serialize(nil,
		packet.IPv4{TTL: 9, Proto: packet.ProtoProbe, Src: ip("10.0.1.1"), Dst: ip("10.0.2.1")},
		packet.Probe{Op: packet.ProbeEcho, Token: 5})
	aMAC, _ := r.net.PortMAC(port("A", "eth2"))
	bMAC, _ := r.net.PortMAC(port("B", "eth0"))
	frame, _ := packet.Serialize(inner,
		packet.Ethernet{Dst: bMAC, Src: aMAC, Type: packet.EtherTypeMPLS},
		packet.MPLS{Entries: []packet.MPLSEntry{{Label: 999, TTL: 64}}})
	if err := r.net.Send(port("A", "eth2"), frame); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 0 {
		t.Fatalf("unknown label delivered: %v", got)
	}
}

// buildVLANRig configures the Fig 9 VLAN tunnel across switches A, B, C.
func buildVLANRig(t *testing.T) *rig {
	r := newRig(t)
	d := r.add("D", kernel.RoleRouter, "eth0")
	r.add("SwA", kernel.RoleSwitch, "gigabitethernet0/7", "gigabitethernet0/9")
	r.add("SwB", kernel.RoleSwitch, "gigabitethernet0/1", "gigabitethernet0/2")
	r.add("SwC", kernel.RoleSwitch, "gigabitethernet0/7", "gigabitethernet0/9")
	e := r.add("E", kernel.RoleRouter, "eth0")
	r.connect("D-SwA", port("D", "eth0"), port("SwA", "gigabitethernet0/7"))
	r.connect("SwA-SwB", port("SwA", "gigabitethernet0/9"), port("SwB", "gigabitethernet0/1"))
	r.connect("SwB-SwC", port("SwB", "gigabitethernet0/2"), port("SwC", "gigabitethernet0/9"))
	r.connect("SwC-E", port("SwC", "gigabitethernet0/7"), port("E", "eth0"))

	// D and E share a subnet across the L2 tunnel.
	customerEdge(t, d, "eth0", pfx("192.168.5.1/24"), pfx("10.0.1.1/24"), ip("192.168.5.2"))
	customerEdge(t, e, "eth0", pfx("192.168.5.2/24"), pfx("10.0.2.1/24"), ip("192.168.5.1"))
	// Point the site routes at each other.
	if err := d.AddRoute("", kernel.Route{Dst: pfx("10.0.2.0/24"), Via: ip("192.168.5.2"), Dev: "eth0", MPLSKey: -1}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRoute("", kernel.Route{Dst: pfx("10.0.1.0/24"), Via: ip("192.168.5.1"), Dev: "eth0", MPLSKey: -1}); err != nil {
		t.Fatal(err)
	}

	// Fig 9(a), verbatim, on switch A.
	r.exec("SwA", `# put module0 port 9 into VLAN22
# ensure MTU is set properly
set vlan 22 name C1 mtu 1504
set vlan 22 gigabitethernet0/9
# ensure module 0 port 7 is access port
interface gigabitethernet0/7
switchport access vlan 22
switchport mode dot1q-tunnel
exit
vlan dot1q tag native
end`)
	// Transit switch B: both ports trunk VLAN 22.
	r.exec("SwB", "set vlan 22 name C1 mtu 1504\nset vlan 22 gigabitethernet0/1\nset vlan 22 gigabitethernet0/2")
	// Mirror on switch C.
	r.exec("SwC", `set vlan 22 name C1 mtu 1504
set vlan 22 gigabitethernet0/9
interface gigabitethernet0/7
switchport access vlan 22
switchport mode dot1q-tunnel
exit
vlan dot1q tag native
end`)
	return r
}

func TestVLANTunnelEndToEnd(t *testing.T) {
	r := buildVLANRig(t)
	r.net.EnableCapture("SwA-SwB")

	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 2718); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 1 || got[0] != 2718 {
		t.Fatalf("E echoes = %v", got)
	}
	if got := r.ks["D"].ProbeReplies(); len(got) != 1 || got[0] != 2718 {
		t.Fatalf("D replies = %v", got)
	}

	// Frames on the inter-switch trunk must carry the 802.1Q tag VID 22.
	var sawTag bool
	for _, c := range r.net.Captures("SwA-SwB") {
		d, err := packet.Decode(c.Bytes, packet.LayerTypeEthernet)
		if err != nil {
			continue
		}
		if l := d.Layer(packet.LayerTypeDot1Q); l != nil {
			if q := l.(packet.Dot1Q); q.VID == 22 {
				sawTag = true
			}
		}
	}
	if !sawTag {
		t.Fatal("no VID-22 tagged frames on the trunk")
	}
}

func TestVLANQinQDoubleTag(t *testing.T) {
	r := buildVLANRig(t)
	r.net.EnableCapture("SwA-SwB")

	// A customer frame that already carries its own 802.1Q tag must be
	// tunneled intact: double-tagged on the trunk (dot1q-tunnel mode).
	dMAC, _ := r.net.PortMAC(port("D", "eth0"))
	frame, err := packet.Serialize([]byte("customer-payload"),
		packet.Ethernet{Dst: packet.BroadcastMAC, Src: dMAC, Type: packet.EtherTypeDot1Q},
		packet.Dot1Q{VID: 7, Type: 0x88B7 /* opaque customer protocol */})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.net.Send(port("D", "eth0"), frame); err != nil {
		t.Fatal(err)
	}
	var sawDouble bool
	for _, c := range r.net.Captures("SwA-SwB") {
		d, err := packet.Decode(c.Bytes, packet.LayerTypeEthernet)
		if err != nil {
			t.Fatalf("trunk frame decode: %v", err)
		}
		var tags []packet.Dot1Q
		for _, l := range d.Layers {
			if l.LayerType() == packet.LayerTypeDot1Q {
				tags = append(tags, l.(packet.Dot1Q))
			}
		}
		if len(tags) == 2 && tags[0].VID == 22 && tags[1].VID == 7 {
			sawDouble = true
		}
	}
	if !sawDouble {
		t.Fatal("no double-tagged (QinQ) frame observed on the trunk")
	}
}

func TestVLANMTUEnforced(t *testing.T) {
	r := buildVLANRig(t)
	// A frame whose payload exceeds the VLAN MTU (1504) must be dropped.
	pad := make([]byte, 1600)
	probe, _ := packet.Serialize(pad, packet.Probe{Op: packet.ProbeEcho, Token: 11})
	if err := r.ks["D"].SendIP(ip("10.0.1.1"), ip("10.0.2.1"), packet.ProtoProbe, probe); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 0 {
		t.Fatalf("oversized frame delivered: %v", got)
	}
}

func TestVLANIsolationOtherVID(t *testing.T) {
	r := buildVLANRig(t)
	// Inject a frame tagged with a different VID directly onto the trunk:
	// switch B must not leak it toward C (not in allow-list? it is: only
	// VID 22 is allowed on B's ports).
	aMAC, _ := r.net.PortMAC(port("SwA", "gigabitethernet0/9"))
	frame, _ := packet.Serialize([]byte("rogue"),
		packet.Ethernet{Dst: packet.BroadcastMAC, Src: aMAC, Type: packet.EtherTypeDot1Q},
		packet.Dot1Q{VID: 33, Type: packet.EtherTypeIPv4})
	r.net.EnableCapture("SwB-SwC")
	if err := r.net.Send(port("SwA", "gigabitethernet0/9"), frame); err != nil {
		t.Fatal(err)
	}
	if caps := r.net.Captures("SwB-SwC"); len(caps) != 0 {
		t.Fatalf("VID-33 frame leaked: %d frames", len(caps))
	}
}

// ---------------------------------------------------------------------------
// Unit tests

func TestExecErrors(t *testing.T) {
	r := newRig(t)
	k := r.add("X", kernel.RoleRouter, "eth0")
	for _, bad := range []string{
		"frobnicate",
		"ip tunnel add name t mode gre remote 1.2.3.4 local 5.6.7.8", // no insmod
		"ip rule add to 10.0.0.0/8 table missing",
		"ip route add default dev eth0 table missing",
		"mpls ilm add label gen 5 labelspace 0", // mpls not loaded
		"echo 5 > /some/other/file",
		"switchport access vlan 3", // outside interface context
		"ip tunnel del t",
		"ifconfig",
	} {
		if _, err := k.Exec(bad); err == nil {
			t.Errorf("Exec(%q): want error", bad)
		}
	}
}

func TestExecTunnelRequiresMode(t *testing.T) {
	r := newRig(t)
	k := r.add("X", kernel.RoleRouter, "eth0")
	if _, err := k.Exec("insmod ip_gre.ko"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Exec("ip tunnel add name t mode ipip remote 1.2.3.4 local 5.6.7.8"); err == nil {
		t.Fatal("want unsupported-mode error")
	}
	if _, err := k.Exec("ip tunnel add name t mode gre remote 1.2.3.4"); err == nil {
		t.Fatal("want missing-local error")
	}
}

func TestExecTunnelStateVisible(t *testing.T) {
	r := newRig(t)
	k := r.add("X", kernel.RoleRouter, "eth0")
	_, err := k.ExecScript(`insmod ip_gre.ko
ip tunnel add name greX mode gre remote 9.9.9.9 local 8.8.8.8 ikey 5 okey 6 iseq oseq
ifconfig greX 172.16.0.1`)
	if err != nil {
		t.Fatal(err)
	}
	tun, ok := k.Tunnel("greX")
	if !ok {
		t.Fatal("tunnel not created")
	}
	if tun.Remote != ip("9.9.9.9") || tun.Local != ip("8.8.8.8") ||
		!tun.HasIKey || tun.IKey != 5 || !tun.HasOKey || tun.OKey != 6 ||
		!tun.ISeq || !tun.OSeq || tun.ICsum || tun.OCsum {
		t.Fatalf("tunnel state %+v", tun)
	}
	if a, ok := k.AddrOf("greX"); !ok || a != ip("172.16.0.1") {
		t.Fatalf("addr = %v %v", a, ok)
	}
	if log := k.ExecLog(); len(log) != 3 {
		t.Fatalf("exec log %v", log)
	}
}

func TestRouteLookupPolicyOrder(t *testing.T) {
	r := newRig(t)
	k := r.add("X", kernel.RoleRouter, "eth0", "eth1")
	if err := k.AddAddr("eth0", pfx("10.1.0.1/24")); err != nil {
		t.Fatal(err)
	}
	k.RegisterTable(100, "special")
	if err := k.AddRoute("special", kernel.Route{Dst: pfx("10.2.0.0/16"), Dev: "eth1", MPLSKey: -1}); err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(kernel.PolicyRule{To: pfx("10.2.3.0/24"), Table: "special"}); err != nil {
		t.Fatal(err)
	}
	if err := k.AddRoute("", kernel.Route{Dst: pfx("10.2.0.0/16"), Dev: "eth0", MPLSKey: -1}); err != nil {
		t.Fatal(err)
	}
	// Inside the rule's prefix: special table wins.
	rt, table, ok := k.RouteLookup("", ip("10.2.3.4"))
	if !ok || table != "special" || rt.Dev != "eth1" {
		t.Fatalf("lookup = %+v %q %v", rt, table, ok)
	}
	// Outside: falls through to main.
	rt, table, ok = k.RouteLookup("", ip("10.2.9.4"))
	if !ok || table != "main" || rt.Dev != "eth0" {
		t.Fatalf("lookup = %+v %q %v", rt, table, ok)
	}
	// No route at all.
	if _, _, ok := k.RouteLookup("", ip("99.9.9.9")); ok {
		t.Fatal("want miss")
	}
}

func TestRuleTableMissFallsThrough(t *testing.T) {
	r := newRig(t)
	k := r.add("X", kernel.RoleRouter, "eth0")
	if err := k.AddAddr("eth0", pfx("10.1.0.1/24")); err != nil {
		t.Fatal(err)
	}
	k.RegisterTable(100, "empty")
	if err := k.AddRule(kernel.PolicyRule{To: pfx("10.1.0.0/16"), Table: "empty"}); err != nil {
		t.Fatal(err)
	}
	// Rule matches but its table is empty: Linux falls through to main,
	// where the connected route lives.
	rt, table, ok := k.RouteLookup("", ip("10.1.0.7"))
	if !ok || table != "main" || rt.Dev != "eth0" {
		t.Fatalf("lookup = %+v %q %v", rt, table, ok)
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	r := newRig(t)
	k := r.add("X", kernel.RoleRouter, "eth0", "eth1", "eth2")
	for _, rt := range []kernel.Route{
		{Dev: "eth0", MPLSKey: -1},                          // default
		{Dst: pfx("10.0.0.0/8"), Dev: "eth1", MPLSKey: -1},  //
		{Dst: pfx("10.7.0.0/16"), Dev: "eth2", MPLSKey: -1}, //
	} {
		if err := k.AddRoute("", rt); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		dst string
		dev string
	}{
		{"10.7.1.1", "eth2"},
		{"10.9.1.1", "eth1"},
		{"192.0.2.1", "eth0"},
	}
	for _, c := range cases {
		rt, _, ok := k.RouteLookup("", ip(c.dst))
		if !ok || rt.Dev != c.dev {
			t.Fatalf("%s -> %+v %v, want dev %s", c.dst, rt, ok, c.dev)
		}
	}
}

func TestFiltersDropAndCount(t *testing.T) {
	r := newRig(t)
	d := r.add("D", kernel.RoleRouter, "eth0")
	a := r.add("A", kernel.RoleRouter, "eth0")
	r.connect("DA", port("D", "eth0"), port("A", "eth0"))
	if err := d.AddAddr("eth0", pfx("10.0.0.1/24")); err != nil {
		t.Fatal(err)
	}
	if err := a.AddAddr("eth0", pfx("10.0.0.2/24")); err != nil {
		t.Fatal(err)
	}
	f := a.AddFilter(kernel.FilterEntry{
		ID:        "f1",
		SrcPrefix: pfx("10.0.0.1/32"),
		Action:    core.ActionDrop,
	})
	if err := d.SendProbe(ip("10.0.0.2"), 1); err != nil {
		t.Fatal(err)
	}
	if got := a.ProbeEchoes(); len(got) != 0 {
		t.Fatalf("filtered packet delivered: %v", got)
	}
	if fs := a.Filters(); len(fs) != 1 || fs[0].Hits != 1 {
		t.Fatalf("filters = %+v", fs)
	}
	_ = f
	a.DelFilter("f1")
	if err := d.SendProbe(ip("10.0.0.2"), 2); err != nil {
		t.Fatal(err)
	}
	if got := a.ProbeEchoes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after filter removal: %v", got)
	}
}

func TestUDPFilterByPort(t *testing.T) {
	r := newRig(t)
	d := r.add("D", kernel.RoleRouter, "eth0")
	a := r.add("A", kernel.RoleRouter, "eth0")
	r.connect("DA", port("D", "eth0"), port("A", "eth0"))
	if err := d.AddAddr("eth0", pfx("10.0.0.1/24")); err != nil {
		t.Fatal(err)
	}
	if err := a.AddAddr("eth0", pfx("10.0.0.2/24")); err != nil {
		t.Fatal(err)
	}
	var got []string
	a.RegisterUDP(592, func(src netip.Addr, sport uint16, payload []byte) {
		got = append(got, string(payload))
	})
	a.AddFilter(kernel.FilterEntry{
		ID: "deny592", DstPort: 592, HasPort: true, Proto: packet.ProtoUDP, HasProto: true,
		Action: core.ActionDrop,
	})
	if err := d.SendUDP(ip("10.0.0.1"), ip("10.0.0.2"), 1000, 592, []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("filtered UDP delivered: %v", got)
	}
	a.DelFilter("deny592")
	if err := d.SendUDP(ip("10.0.0.1"), ip("10.0.0.2"), 1000, 592, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "ok" {
		t.Fatalf("UDP delivery: %v", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	r := buildGRERig(t)
	// A probe with TTL 1 injected at A toward S2 must die at the first
	// forwarding hop.
	inner, _ := packet.Serialize(nil, packet.Probe{Op: packet.ProbeEcho, Token: 66})
	pktb, _ := packet.Serialize(inner, packet.IPv4{TTL: 1, Proto: packet.ProtoProbe, Src: ip("10.0.1.1"), Dst: ip("10.0.2.1")})
	dMAC, _ := r.net.PortMAC(port("D", "eth0"))
	aMAC, _ := r.net.PortMAC(port("A", "eth1"))
	frame, _ := packet.Serialize(pktb[20:], packet.Ethernet{Dst: aMAC, Src: dMAC, Type: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 1, Proto: packet.ProtoProbe, Src: ip("10.0.1.1"), Dst: ip("10.0.2.1")})
	if err := r.net.Send(port("D", "eth0"), frame); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 0 {
		t.Fatalf("TTL-1 packet delivered: %v", got)
	}
}

func TestIfaceCountersAdvance(t *testing.T) {
	r := buildGRERig(t)
	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 8); err != nil {
		t.Fatal(err)
	}
	rx, tx := r.ks["A"].IfaceCounters("greA")
	if rx == 0 || tx == 0 {
		t.Fatalf("greA counters rx=%d tx=%d, want both > 0", rx, tx)
	}
}

func TestLinkCutStopsTraffic(t *testing.T) {
	r := buildGRERig(t)
	if err := r.net.SetMediumUp("BC", false); err != nil {
		t.Fatal(err)
	}
	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 9); err != nil {
		t.Fatal(err)
	}
	if got := r.ks["E"].ProbeEchoes(); len(got) != 0 {
		t.Fatalf("traffic crossed a cut link: %v", got)
	}
	if err := r.net.SetMediumUp("BC", true); err != nil {
		t.Fatal(err)
	}
	if err := r.ks["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 10); err != nil {
		t.Fatal(err)
	}
	// Token 10 must arrive; token 9 may too — B's ARP queue legitimately
	// flushes the held packet once the link heals, as on Linux.
	got := r.ks["E"].ProbeEchoes()
	seen10 := false
	for _, tok := range got {
		if tok == 10 {
			seen10 = true
		}
	}
	if !seen10 {
		t.Fatalf("traffic did not resume: %v", got)
	}
}

func TestCatOSPortState(t *testing.T) {
	r := newRig(t)
	k := r.add("Sw", kernel.RoleSwitch, "gigabitethernet0/7", "gigabitethernet0/9")
	r.exec("Sw", `set vlan 22 name C1 mtu 1504
set vlan 22 gigabitethernet0/9
interface gigabitethernet0/7
switchport access vlan 22
switchport mode dot1q-tunnel
exit`)
	if mode, vid := k.PortModeOf("gigabitethernet0/7"); mode != kernel.ModeDot1qTunnel || vid != 22 {
		t.Fatalf("port 7: %v vid %d", mode, vid)
	}
	if mode, _ := k.PortModeOf("gigabitethernet0/9"); mode != kernel.ModeTrunk {
		t.Fatalf("port 9: %v", mode)
	}
	if name, mtu, ok := k.VLANOf(22); !ok || name != "C1" || mtu != 1504 {
		t.Fatalf("vlan 22: %q %d %v", name, mtu, ok)
	}
}
