// Package kernel is the per-device "Linux/CatOS kernel" of the
// reproduction: a byte-level software router and L2 switch that the
// CONMan protocol modules wrap, exactly as the paper's modules wrap the
// Linux 2.6.14 kernel implementations (§III).
//
// It implements Ethernet I/O with ARP (including proxy ARP), IPv4
// forwarding with policy routing (multiple tables selected by `ip rule`
// entries), GRE-IP tunnels with key/checksum/sequence options, MPLS
// label switching (labelspaces, ILM, NHLFE, cross-connects), 802.1Q
// VLAN bridging with QinQ tunnel ports, packet filters, UDP sockets and
// a probe responder for module self-tests.
//
// State is mutated two ways: programmatically (by protocol modules) and
// through Exec, which parses the same device-level command dialects the
// paper prints in Figs 7(a), 8(a) and 9(a) (`ip tunnel add …`,
// `mpls nhlfe add …`, CatOS `set vlan …`). Both paths converge on the
// same structures, so a configuration is "real" regardless of who wrote
// it — the data plane then forwards real encoded packets.
package kernel

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"conman/internal/core"
	"conman/internal/packet"
)

// Role selects the device's forwarding personality.
type Role uint8

const (
	// RoleRouter devices terminate Ethernet at each port and route IPv4.
	RoleRouter Role = iota
	// RoleSwitch devices bridge frames between ports, VLAN-aware.
	RoleSwitch
)

// IfaceKind distinguishes interface flavours.
type IfaceKind uint8

const (
	IfacePhysical IfaceKind = iota
	IfaceGRE
	IfaceLAN // local stub network (customer site hosts); no port
)

// Iface is one kernel interface.
type Iface struct {
	Name       string
	Kind       IfaceKind
	Addrs      []netip.Prefix
	Tunnel     *GRETunnel // for IfaceGRE
	LabelSpace int        // MPLS labelspace; -1 when unset

	RxPkts, TxPkts uint64
}

// GRETunnel is the state of one GRE-IP tunnel interface.
type GRETunnel struct {
	Name          string
	Local, Remote netip.Addr
	HasIKey       bool
	IKey          uint32
	HasOKey       bool
	OKey          uint32
	ICsum, OCsum  bool
	ISeq, OSeq    bool

	txSeq uint32
	rxSeq uint32
	rxAny bool
}

// Route is one routing table entry.
type Route struct {
	Dst     netip.Prefix // invalid prefix means default (0.0.0.0/0)
	Via     netip.Addr   // optional gateway
	Dev     string       // optional egress device
	MPLSKey int          // NHLFE key; -1 when none
}

func (r Route) dst() netip.Prefix {
	if r.Dst.IsValid() {
		return r.Dst
	}
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0)
}

// RouteTable is a named routing table with longest-prefix-match lookup.
type RouteTable struct {
	Name   string
	Routes []Route
}

func (t *RouteTable) lookup(dst netip.Addr) (Route, bool) {
	best := -1
	var out Route
	for _, r := range t.Routes {
		p := r.dst()
		if p.Contains(dst) && p.Bits() > best {
			best = p.Bits()
			out = r
		}
	}
	return out, best >= 0
}

// PolicyRule is one `ip rule` entry: select Table when the packet matches.
type PolicyRule struct {
	To    netip.Prefix // match on destination, when valid
	IIF   string       // match on input interface, when non-empty
	Table string
}

// FilterEntry is one packet filter. Nil/invalid fields are wildcards.
type FilterEntry struct {
	ID        string
	SrcPrefix netip.Prefix
	DstPrefix netip.Prefix
	Proto     packet.IPProto
	HasProto  bool
	DstPort   uint16
	HasPort   bool
	Action    core.FilterAction
	Hits      uint64
}

func (f *FilterEntry) matches(ip packet.IPv4, payload []byte) bool {
	if f.SrcPrefix.IsValid() && !f.SrcPrefix.Contains(ip.Src) {
		return false
	}
	if f.DstPrefix.IsValid() && !f.DstPrefix.Contains(ip.Dst) {
		return false
	}
	if f.HasProto && ip.Proto != f.Proto {
		return false
	}
	if f.HasPort {
		if ip.Proto != packet.ProtoUDP {
			return false
		}
		u, _, _, err := packet.DecodeUDP(payload)
		if err != nil || u.Dst != f.DstPort {
			return false
		}
	}
	return true
}

// ilmKey indexes incoming label mappings.
type ilmKey struct {
	Label      uint32
	LabelSpace int
}

// NHLFE is a next-hop label forwarding entry.
type NHLFE struct {
	Key        int
	MTU        int
	PushLabels []uint32
	NexthopDev string
	NexthopIP  netip.Addr
}

type mplsState struct {
	loaded  bool
	ilm     map[ilmKey]bool // declared ILMs
	xc      map[ilmKey]int  // ILM -> NHLFE key
	nhlfe   map[int]*NHLFE
	nextKey int
}

// UDPHandler receives datagrams delivered to a registered UDP port.
type UDPHandler func(src netip.Addr, srcPort uint16, payload []byte)

// ProbeEvent records a probe echo or reply seen by the kernel.
type ProbeEvent struct {
	Op    uint8
	Token uint32
	Src   netip.Addr
	Dst   netip.Addr
}

// EtherTypeHandler receives raw frames of a registered EtherType before
// any bridging or routing (used by the self-bootstrapping management
// channel).
type EtherTypeHandler func(port string, eth packet.Ethernet, payload []byte)

type pendingPkt struct {
	etherType packet.EtherType
	data      []byte
}

// Kernel is the device's forwarding engine and configuration store.
type Kernel struct {
	dev     core.DeviceID
	role    Role
	send    func(port string, frame []byte) error
	portMAC func(port string) (packet.MAC, bool)

	mu         sync.Mutex
	ifaces     map[string]*Iface
	ipForward  bool
	proxyARP   bool
	rtNames    map[int]string
	tables     map[string]*RouteTable
	rules      []PolicyRule
	arp        map[netip.Addr]packet.MAC
	arpPending map[netip.Addr][]pendingPkt
	mpls       mplsState
	bridge     bridgeState
	filters    []*FilterEntry
	udp        map[uint16]UDPHandler
	ethHandler map[packet.EtherType]EtherTypeHandler
	modules    map[string]bool // `insmod`/`modprobe` flags
	probes     []ProbeEvent
	execLog    []string

	// OnProbe, when set, is invoked for every probe echo or reply the
	// kernel delivers locally (module self-tests subscribe here).
	OnProbe func(ev ProbeEvent)
}

// maxEncapDepth bounds recursive encapsulation/decapsulation.
const maxEncapDepth = 10

// originTTL is the TTL of locally originated IPv4 packets (and GRE
// outer headers). Routers originate at the protocol maximum rather than
// the host default of 64 so the scale chains forward end-to-end: a
// linear topology of n routers needs n-1 forwarding hops, and the IGP
// scenarios run at n=128.
const originTTL = 255

// New creates a kernel for a device. send transmits a frame out of a
// physical port; portMAC resolves a port's MAC address.
func New(dev core.DeviceID, role Role, send func(port string, frame []byte) error, portMAC func(port string) (packet.MAC, bool)) *Kernel {
	k := &Kernel{
		dev:        dev,
		role:       role,
		send:       send,
		portMAC:    portMAC,
		ifaces:     make(map[string]*Iface),
		rtNames:    map[int]string{254: "main"},
		tables:     map[string]*RouteTable{"main": {Name: "main"}},
		arp:        make(map[netip.Addr]packet.MAC),
		arpPending: make(map[netip.Addr][]pendingPkt),
		udp:        make(map[uint16]UDPHandler),
		ethHandler: make(map[packet.EtherType]EtherTypeHandler),
		modules:    make(map[string]bool),
	}
	k.mpls = mplsState{ilm: make(map[ilmKey]bool), xc: make(map[ilmKey]int), nhlfe: make(map[int]*NHLFE), nextKey: 1}
	k.bridge = newBridgeState()
	return k
}

// Device returns the owning device id.
func (k *Kernel) Device() core.DeviceID { return k.dev }

// PortMAC resolves a physical port's MAC address.
func (k *Kernel) PortMAC(port string) (packet.MAC, bool) { return k.portMAC(port) }

// Role returns the forwarding personality.
func (k *Kernel) Role() Role { return k.role }

// ---------------------------------------------------------------------------
// Interface management

// AddPhysical registers a physical port as a routed/bridged interface.
func (k *Kernel) AddPhysical(name string) *Iface {
	k.mu.Lock()
	defer k.mu.Unlock()
	i := &Iface{Name: name, Kind: IfacePhysical, LabelSpace: -1}
	k.ifaces[name] = i
	return i
}

// AddLAN registers a local stub network (a customer site) with an address.
func (k *Kernel) AddLAN(name string, addr netip.Prefix) *Iface {
	k.mu.Lock()
	defer k.mu.Unlock()
	i := &Iface{Name: name, Kind: IfaceLAN, Addrs: []netip.Prefix{addr}, LabelSpace: -1}
	k.ifaces[name] = i
	k.addConnectedRoute(name, addr)
	return i
}

// addConnectedRoute mirrors Linux: assigning a subnet address installs a
// connected route in main. Caller holds k.mu.
func (k *Kernel) addConnectedRoute(iface string, p netip.Prefix) {
	if p.IsSingleIP() {
		return
	}
	t := k.tables["main"]
	t.Routes = append(t.Routes, Route{Dst: p.Masked(), Dev: iface, MPLSKey: -1})
}

// Iface returns an interface by name.
func (k *Kernel) Iface(name string) (*Iface, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	i, ok := k.ifaces[name]
	return i, ok
}

// Ifaces returns interface names, sorted.
func (k *Kernel) Ifaces() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	names := make([]string, 0, len(k.ifaces))
	for n := range k.ifaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddAddr assigns an address (with prefix) to an interface.
func (k *Kernel) AddAddr(iface string, p netip.Prefix) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	i, ok := k.ifaces[iface]
	if !ok {
		return fmt.Errorf("kernel[%s]: no interface %q", k.dev, iface)
	}
	i.Addrs = append(i.Addrs, p)
	k.addConnectedRoute(iface, p)
	return nil
}

// AddrOf returns the first address assigned to an interface.
func (k *Kernel) AddrOf(iface string) (netip.Addr, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	i, ok := k.ifaces[iface]
	if !ok || len(i.Addrs) == 0 {
		return netip.Addr{}, false
	}
	return i.Addrs[0].Addr(), true
}

// SetIPForward enables or disables IPv4 forwarding.
func (k *Kernel) SetIPForward(on bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ipForward = on
}

// IPForward reports whether forwarding is enabled.
func (k *Kernel) IPForward() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ipForward
}

// SetProxyARP makes the kernel answer ARP requests for any address it has
// a route to (Linux's proxy_arp=1); customer edge routers use it so the
// ISP's on-link default routes resolve (§III-C today-scripts).
func (k *Kernel) SetProxyARP(on bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.proxyARP = on
}

func (k *Kernel) isLocal(a netip.Addr) bool {
	for _, i := range k.ifaces {
		for _, p := range i.Addrs {
			if p.Addr() == a {
				return true
			}
		}
	}
	return false
}

// IsLocalAddr reports whether the address is assigned to this device.
func (k *Kernel) IsLocalAddr(a netip.Addr) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.isLocal(a)
}

// IfaceForSubnet returns the interface (and our address on it) whose
// subnet contains a — how a module answers "which of my addresses faces
// this neighbour".
func (k *Kernel) IfaceForSubnet(a netip.Addr) (iface string, self netip.Addr, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	i, p, found := k.ifaceForSubnet(a)
	if !found {
		return "", netip.Addr{}, false
	}
	return i.Name, p.Addr(), true
}

// NumberedTables counts the policy tables registered beyond "main"; IP
// modules use it to pick the next rt_tables number (202, 203, ... as in
// Fig 7a).
func (k *Kernel) NumberedTables() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for num := range k.rtNames {
		if num != 254 {
			n++
		}
	}
	return n
}

// ifaceForSubnet returns the interface whose subnet contains a.
func (k *Kernel) ifaceForSubnet(a netip.Addr) (*Iface, netip.Prefix, bool) {
	for _, i := range k.ifaces {
		for _, p := range i.Addrs {
			if p.Masked().Contains(a) {
				return i, p, true
			}
		}
	}
	return nil, netip.Prefix{}, false
}

// ---------------------------------------------------------------------------
// Tables, rules, routes, tunnels, filters: programmatic API

// RegisterTable names a routing table number (the rt_tables file).
func (k *Kernel) RegisterTable(num int, name string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.rtNames[num] = name
	if _, ok := k.tables[name]; !ok {
		k.tables[name] = &RouteTable{Name: name}
	}
}

// AddRule appends a policy rule.
func (k *Kernel) AddRule(r PolicyRule) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.tables[r.Table]; !ok {
		return fmt.Errorf("kernel[%s]: rule references unknown table %q", k.dev, r.Table)
	}
	k.rules = append(k.rules, r)
	return nil
}

// AddRoute appends a route to the named table ("" means main).
func (k *Kernel) AddRoute(table string, r Route) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if table == "" {
		table = "main"
	}
	t, ok := k.tables[table]
	if !ok {
		return fmt.Errorf("kernel[%s]: unknown table %q", k.dev, table)
	}
	if r.MPLSKey == 0 {
		r.MPLSKey = -1
	}
	t.Routes = append(t.Routes, r)
	return nil
}

// DelRoutes removes all routes from the named table matching dev.
func (k *Kernel) DelRoutes(table, dev string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t, ok := k.tables[table]
	if !ok {
		return
	}
	kept := t.Routes[:0]
	for _, r := range t.Routes {
		if r.Dev != dev {
			kept = append(kept, r)
		}
	}
	t.Routes = kept
}

// DelRouteWhere removes every route matching pred from the named table
// ("" = main) and reports how many were removed. Modules use it to undo
// the routes their switch rules installed (declarative teardown).
func (k *Kernel) DelRouteWhere(table string, pred func(Route) bool) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	if table == "" {
		table = "main"
	}
	t, ok := k.tables[table]
	if !ok {
		return 0
	}
	kept := t.Routes[:0]
	removed := 0
	for _, r := range t.Routes {
		if pred(r) {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.Routes = kept
	return removed
}

// Routes returns a copy of the named table's routes ("" = main), for
// tests and operators inspecting what modules installed.
func (k *Kernel) Routes(table string) []Route {
	k.mu.Lock()
	defer k.mu.Unlock()
	if table == "" {
		table = "main"
	}
	t, ok := k.tables[table]
	if !ok {
		return nil
	}
	return append([]Route(nil), t.Routes...)
}

// DropTable removes a named policy table: its routes, every policy rule
// selecting it, and its rt_tables registration — the inverse of the
// `echo N name >> rt_tables` / `ip rule add ... table name` /
// `ip route add ... table name` sequence the IP module emits. "main" is
// never dropped.
func (k *Kernel) DropTable(name string) {
	if name == "main" || name == "" {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.tables, name)
	for num, n := range k.rtNames {
		if n == name {
			delete(k.rtNames, num)
		}
	}
	kept := k.rules[:0]
	for _, r := range k.rules {
		if r.Table != name {
			kept = append(kept, r)
		}
	}
	k.rules = kept
}

// AddGRETunnel creates a GRE tunnel interface.
func (k *Kernel) AddGRETunnel(t GRETunnel) (*Iface, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.ifaces[t.Name]; ok {
		return nil, fmt.Errorf("kernel[%s]: interface %q exists", k.dev, t.Name)
	}
	tun := t
	i := &Iface{Name: t.Name, Kind: IfaceGRE, Tunnel: &tun, LabelSpace: -1}
	k.ifaces[t.Name] = i
	return i, nil
}

// DelIface removes an interface (and its tunnel state).
func (k *Kernel) DelIface(name string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.ifaces, name)
}

// ResetTunnelSeq clears a GRE tunnel's receive-sequence protection so a
// re-established far end (whose transmit sequence restarted at zero) is
// accepted again. Invoked by the GRE module when its peer reports a
// tunnel teardown.
func (k *Kernel) ResetTunnelSeq(name string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if i, ok := k.ifaces[name]; ok && i.Tunnel != nil {
		i.Tunnel.rxSeq = 0
		i.Tunnel.rxAny = false
	}
}

// Tunnel returns a GRE tunnel's state by interface name.
func (k *Kernel) Tunnel(name string) (*GRETunnel, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	i, ok := k.ifaces[name]
	if !ok || i.Tunnel == nil {
		return nil, false
	}
	return i.Tunnel, true
}

// AddFilter installs a packet filter and returns it.
func (k *Kernel) AddFilter(f FilterEntry) *FilterEntry {
	k.mu.Lock()
	defer k.mu.Unlock()
	nf := f
	k.filters = append(k.filters, &nf)
	return &nf
}

// DelFilter removes a filter by id.
func (k *Kernel) DelFilter(id string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	kept := k.filters[:0]
	for _, f := range k.filters {
		if f.ID != id {
			kept = append(kept, f)
		}
	}
	k.filters = kept
}

// Filters returns the installed filters.
func (k *Kernel) Filters() []FilterEntry {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]FilterEntry, len(k.filters))
	for i, f := range k.filters {
		out[i] = *f
	}
	return out
}

// SetLabelSpace assigns an MPLS labelspace to a device interface.
func (k *Kernel) SetLabelSpace(iface string, space int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	i, ok := k.ifaces[iface]
	if !ok {
		return fmt.Errorf("kernel[%s]: no interface %q", k.dev, iface)
	}
	i.LabelSpace = space
	return nil
}

// AddILM declares an incoming label mapping.
func (k *Kernel) AddILM(label uint32, space int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.mpls.ilm[ilmKey{label, space}] = true
}

// AddNHLFE allocates a next-hop label forwarding entry and returns its key.
func (k *Kernel) AddNHLFE(n NHLFE) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	key := k.mpls.nextKey
	k.mpls.nextKey++
	n.Key = key
	k.mpls.nhlfe[key] = &n
	return key
}

// AddXC cross-connects an ILM to an NHLFE.
func (k *Kernel) AddXC(label uint32, space, nhlfeKey int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ik := ilmKey{label, space}
	if !k.mpls.ilm[ik] {
		return fmt.Errorf("kernel[%s]: xc references undeclared ilm %d/%d", k.dev, label, space)
	}
	if _, ok := k.mpls.nhlfe[nhlfeKey]; !ok {
		return fmt.Errorf("kernel[%s]: xc references unknown nhlfe key %d", k.dev, nhlfeKey)
	}
	k.mpls.xc[ik] = nhlfeKey
	return nil
}

// DelILM removes an incoming label mapping and its cross-connect.
func (k *Kernel) DelILM(label uint32, space int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	ik := ilmKey{label, space}
	delete(k.mpls.ilm, ik)
	delete(k.mpls.xc, ik)
}

// DelNHLFE removes a next-hop label forwarding entry by key.
func (k *Kernel) DelNHLFE(key int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.mpls.nhlfe, key)
}

// HasNHLFE reports whether an NHLFE with the given key exists. Routes
// referencing a missing key silently drop traffic (the stale-handle
// black hole of §II-E), so consistency checks want this visible.
func (k *Kernel) HasNHLFE(key int) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	_, ok := k.mpls.nhlfe[key]
	return ok
}

// RegisterUDP binds a handler to a local UDP port.
func (k *Kernel) RegisterUDP(port uint16, h UDPHandler) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.udp[port] = h
}

// UnregisterUDP removes a UDP binding.
func (k *Kernel) UnregisterUDP(port uint16) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.udp, port)
}

// RegisterEtherType registers a raw frame handler (management channel).
func (k *Kernel) RegisterEtherType(et packet.EtherType, h EtherTypeHandler) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ethHandler[et] = h
}

// Probes returns the probe events delivered locally so far.
func (k *Kernel) Probes() []ProbeEvent {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]ProbeEvent(nil), k.probes...)
}

// IfaceCounters returns rx/tx packet counts for an interface.
func (k *Kernel) IfaceCounters(name string) (rx, tx uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if i, ok := k.ifaces[name]; ok {
		return i.RxPkts, i.TxPkts
	}
	return 0, 0
}

// ExecLog returns the device-level commands executed so far.
func (k *Kernel) ExecLog() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]string(nil), k.execLog...)
}

// ---------------------------------------------------------------------------
// Frame input

// HandleFrame is the netsim entry point: a frame arrived on a port.
func (k *Kernel) HandleFrame(port string, frame []byte) {
	eth, n, _, err := packet.DecodeEthernet(frame)
	if err != nil {
		return
	}
	payload := frame[n:]

	k.mu.Lock()
	if h, ok := k.ethHandler[eth.Type]; ok {
		k.mu.Unlock()
		h(port, eth, payload)
		return
	}
	if i, ok := k.ifaces[port]; ok {
		i.RxPkts++
	}
	role := k.role
	k.mu.Unlock()

	if role == RoleSwitch {
		k.bridgeInput(port, eth, frame)
		return
	}

	mac, ok := k.portMAC(port)
	if !ok {
		return
	}
	if eth.Dst != mac && !eth.Dst.IsBroadcast() {
		return
	}
	switch eth.Type {
	case packet.EtherTypeARP:
		k.arpInput(port, payload)
	case packet.EtherTypeIPv4:
		k.ipInput(port, payload, 0)
	case packet.EtherTypeMPLS:
		k.mplsInput(port, payload)
	}
}

// ---------------------------------------------------------------------------
// ARP

func (k *Kernel) arpInput(port string, data []byte) {
	a, _, _, err := packet.DecodeARP(data)
	if err != nil {
		return
	}
	k.mu.Lock()
	// Opportunistically learn the sender.
	k.arp[a.SenderIP] = a.SenderMAC
	pend := k.arpPending[a.SenderIP]
	delete(k.arpPending, a.SenderIP)
	k.mu.Unlock()

	for _, p := range pend {
		k.ethOut(port, a.SenderMAC, p.etherType, p.data)
	}

	if a.Op != packet.ARPRequest {
		return
	}
	k.mu.Lock()
	answer := k.isLocal(a.TargetIP)
	if !answer && k.proxyARP {
		// Proxy ARP: answer for addresses we can route somewhere else.
		if _, _, ok := k.lockedRouteLookup(port, a.TargetIP); ok {
			answer = true
		}
	}
	k.mu.Unlock()
	if !answer {
		return
	}
	mac, ok := k.portMAC(port)
	if !ok {
		return
	}
	reply := packet.ARP{
		Op:        packet.ARPReply,
		SenderMAC: mac,
		SenderIP:  a.TargetIP,
		TargetMAC: a.SenderMAC,
		TargetIP:  a.SenderIP,
	}
	frame, err := packet.Serialize(nil,
		packet.Ethernet{Dst: a.SenderMAC, Src: mac, Type: packet.EtherTypeARP}, reply)
	if err == nil {
		_ = k.send(port, frame)
	}
}

// arpResolve sends data (of etherType) to nexthop on iface, resolving the
// MAC first if needed.
func (k *Kernel) arpResolve(iface string, nexthop netip.Addr, etherType packet.EtherType, data []byte) {
	k.mu.Lock()
	mac, known := k.arp[nexthop]
	if !known {
		k.arpPending[nexthop] = append(k.arpPending[nexthop], pendingPkt{etherType, data})
		if len(k.arpPending[nexthop]) > 16 {
			k.arpPending[nexthop] = k.arpPending[nexthop][1:]
		}
	}
	var srcIP netip.Addr
	if i, ok := k.ifaces[iface]; ok {
		if len(i.Addrs) > 0 {
			srcIP = i.Addrs[0].Addr()
		}
		i.TxPkts++
	}
	k.mu.Unlock()

	if known {
		k.ethOut(iface, mac, etherType, data)
		return
	}
	srcMAC, ok := k.portMAC(iface)
	if !ok {
		return
	}
	if !srcIP.IsValid() {
		srcIP = netip.AddrFrom4([4]byte{})
	}
	req := packet.ARP{
		Op:        packet.ARPRequest,
		SenderMAC: srcMAC,
		SenderIP:  srcIP,
		TargetIP:  nexthop,
	}
	frame, err := packet.Serialize(nil,
		packet.Ethernet{Dst: packet.BroadcastMAC, Src: srcMAC, Type: packet.EtherTypeARP}, req)
	if err == nil {
		_ = k.send(iface, frame)
	}
}

func (k *Kernel) ethOut(iface string, dst packet.MAC, etherType packet.EtherType, data []byte) {
	src, ok := k.portMAC(iface)
	if !ok {
		return
	}
	frame, err := packet.Serialize(data, packet.Ethernet{Dst: dst, Src: src, Type: etherType})
	if err != nil {
		return
	}
	_ = k.send(iface, frame)
}

// ---------------------------------------------------------------------------
// IPv4 input / forwarding / output

func (k *Kernel) ipInput(iif string, data []byte, depth int) {
	if depth > maxEncapDepth {
		return
	}
	ip, n, _, err := packet.DecodeIPv4(data)
	if err != nil {
		return
	}
	payload := data[n:]

	k.mu.Lock()
	for _, f := range k.filters {
		if f.matches(ip, payload) {
			f.Hits++
			if f.Action == core.ActionDrop {
				k.mu.Unlock()
				return
			}
			break
		}
	}
	local := k.isLocal(ip.Dst)
	fwd := k.ipForward
	k.mu.Unlock()

	if local {
		k.localDeliver(iif, ip, payload, depth)
		return
	}
	if !fwd {
		return
	}
	if ip.TTL <= 1 {
		return
	}
	ip.TTL--
	out, err := packet.Serialize(payload, ip)
	if err != nil {
		return
	}
	k.routeAndSend(iif, ip.Dst, out, depth)
}

func (k *Kernel) localDeliver(iif string, ip packet.IPv4, payload []byte, depth int) {
	switch ip.Proto {
	case packet.ProtoGRE:
		k.greInput(ip, payload, depth)
	case packet.ProtoIPIP:
		k.ipInput(iif, payload, depth+1)
	case packet.ProtoUDP:
		u, n, _, err := packet.DecodeUDP(payload)
		if err != nil {
			return
		}
		k.mu.Lock()
		h := k.udp[u.Dst]
		k.mu.Unlock()
		if h != nil {
			h(ip.Src, u.Src, payload[n:])
		}
	case packet.ProtoProbe:
		p, _, _, err := packet.DecodeProbe(payload)
		if err != nil {
			return
		}
		ev := ProbeEvent{Op: p.Op, Token: p.Token, Src: ip.Src, Dst: ip.Dst}
		k.mu.Lock()
		k.probes = append(k.probes, ev)
		cb := k.OnProbe
		k.mu.Unlock()
		if cb != nil {
			cb(ev)
		}
		if p.Op == packet.ProbeEcho {
			_ = k.SendIP(ip.Dst, ip.Src, packet.ProtoProbe, mustSerialize(packet.Probe{Op: packet.ProbeReply, Token: p.Token}))
		}
	}
}

func mustSerialize(l packet.SerializableLayer) []byte {
	b, err := packet.Serialize(nil, l)
	if err != nil {
		panic(err)
	}
	return b
}

// lockedRouteLookup evaluates policy rules then tables. Caller holds k.mu.
// Linux semantics: rules are evaluated in order; a rule whose table has no
// matching route falls through to the next rule; the implicit final rule
// consults "main".
func (k *Kernel) lockedRouteLookup(iif string, dst netip.Addr) (Route, string, bool) {
	for _, r := range k.rules {
		if r.To.IsValid() && !r.To.Contains(dst) {
			continue
		}
		if r.IIF != "" && r.IIF != iif {
			continue
		}
		if t, ok := k.tables[r.Table]; ok {
			if rt, ok := t.lookup(dst); ok {
				return rt, r.Table, true
			}
		}
	}
	if rt, ok := k.tables["main"].lookup(dst); ok {
		return rt, "main", true
	}
	return Route{}, "", false
}

// RouteLookup is the exported route query (used by IP modules to answer
// listFieldsAndValues and by debugging).
func (k *Kernel) RouteLookup(iif string, dst netip.Addr) (Route, string, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.lockedRouteLookup(iif, dst)
}

func (k *Kernel) routeAndSend(iif string, dst netip.Addr, pkt []byte, depth int) {
	k.mu.Lock()
	rt, _, ok := k.lockedRouteLookup(iif, dst)
	if !ok {
		k.mu.Unlock()
		return
	}
	var egress *Iface
	if rt.Dev != "" {
		egress = k.ifaces[rt.Dev]
	} else if rt.Via.IsValid() {
		egress, _, _ = k.ifaceForSubnet(rt.Via)
	} else {
		egress, _, _ = k.ifaceForSubnet(dst)
	}
	if egress == nil {
		k.mu.Unlock()
		return
	}
	nexthop := dst
	if rt.Via.IsValid() {
		nexthop = rt.Via
	}
	mplsKey := rt.MPLSKey
	kind := egress.Kind
	name := egress.Name
	var tun GRETunnel
	if egress.Tunnel != nil {
		tun = *egress.Tunnel
		egress.Tunnel.txSeq++
	}
	egress.TxPkts++
	k.mu.Unlock()

	switch {
	case mplsKey > 0:
		k.mplsOutput(mplsKey, pkt, depth)
	case kind == IfaceGRE:
		k.greOutput(tun, pkt, depth)
	case kind == IfaceLAN:
		// Destination is on the local stub network: consume as local
		// delivery for the site's hosts.
		ip, n, _, err := packet.DecodeIPv4(pkt)
		if err == nil {
			k.localDeliver(name, ip, pkt[n:], depth)
		}
	default:
		k.arpResolve(name, nexthop, packet.EtherTypeIPv4, pkt)
	}
}

// SendIP originates an IPv4 packet from this device and routes it.
func (k *Kernel) SendIP(src, dst netip.Addr, proto packet.IPProto, payload []byte) error {
	if !src.IsValid() {
		// Pick a source: the address of the egress interface.
		k.mu.Lock()
		rt, _, ok := k.lockedRouteLookup("", dst)
		if ok {
			var egress *Iface
			if rt.Dev != "" {
				egress = k.ifaces[rt.Dev]
			} else if rt.Via.IsValid() {
				egress, _, _ = k.ifaceForSubnet(rt.Via)
			} else {
				egress, _, _ = k.ifaceForSubnet(dst)
			}
			if egress != nil && len(egress.Addrs) > 0 {
				src = egress.Addrs[0].Addr()
			}
		}
		k.mu.Unlock()
		if !src.IsValid() {
			return fmt.Errorf("kernel[%s]: no source address for %s", k.dev, dst)
		}
	}
	ip := packet.IPv4{TTL: originTTL, Proto: proto, Src: src, Dst: dst}
	pkt, err := packet.Serialize(payload, ip)
	if err != nil {
		return err
	}
	if k.IsLocalAddr(dst) {
		k.ipInput("lo", pkt, 0)
		return nil
	}
	k.routeAndSend("", dst, pkt, 0)
	return nil
}

// SendUDP originates a UDP datagram.
func (k *Kernel) SendUDP(src, dst netip.Addr, sport, dport uint16, payload []byte) error {
	data, err := packet.Serialize(payload, packet.UDP{Src: sport, Dst: dport})
	if err != nil {
		return err
	}
	return k.SendIP(src, dst, packet.ProtoUDP, data)
}

// SendProbe originates a probe echo toward dst with the source chosen
// from the egress interface.
func (k *Kernel) SendProbe(dst netip.Addr, token uint32) error {
	return k.SendIP(netip.Addr{}, dst, packet.ProtoProbe,
		mustSerialize(packet.Probe{Op: packet.ProbeEcho, Token: token}))
}

// SendProbeFrom originates a probe echo with an explicit source address
// (e.g. a customer-site address, so the reply rides the VPN path back).
func (k *Kernel) SendProbeFrom(src, dst netip.Addr, token uint32) error {
	return k.SendIP(src, dst, packet.ProtoProbe,
		mustSerialize(packet.Probe{Op: packet.ProbeEcho, Token: token}))
}

// ProbeReplies returns the tokens of probe replies delivered locally.
func (k *Kernel) ProbeReplies() []uint32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []uint32
	for _, p := range k.probes {
		if p.Op == packet.ProbeReply {
			out = append(out, p.Token)
		}
	}
	return out
}

// ProbeEchoes returns the tokens of probe echoes delivered locally.
func (k *Kernel) ProbeEchoes() []uint32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []uint32
	for _, p := range k.probes {
		if p.Op == packet.ProbeEcho {
			out = append(out, p.Token)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// GRE

func (k *Kernel) greInput(outer packet.IPv4, payload []byte, depth int) {
	g, n, _, err := packet.DecodeGRE(payload)
	if err != nil {
		return
	}
	k.mu.Lock()
	var tun *GRETunnel
	var tunIface *Iface
	for _, i := range k.ifaces {
		t := i.Tunnel
		if t == nil {
			continue
		}
		if t.Local != outer.Dst || t.Remote != outer.Src {
			continue
		}
		if t.HasIKey && (!g.KeyPresent || g.Key != t.IKey) {
			continue
		}
		tun, tunIface = t, i
		break
	}
	if tun == nil {
		k.mu.Unlock()
		return
	}
	if tun.ICsum && !g.ChecksumPresent {
		k.mu.Unlock()
		return
	}
	if tun.ISeq {
		if !g.SeqPresent {
			k.mu.Unlock()
			return
		}
		if tun.rxAny && g.Seq <= tun.rxSeq {
			k.mu.Unlock()
			return // out-of-order or replayed: dropped for in-order delivery
		}
		tun.rxSeq = g.Seq
		tun.rxAny = true
	}
	tunIface.RxPkts++
	name := tunIface.Name
	k.mu.Unlock()

	if g.Proto != packet.EtherTypeIPv4 {
		return
	}
	k.ipInput(name, payload[n:], depth+1)
}

func (k *Kernel) greOutput(tun GRETunnel, inner []byte, depth int) {
	if depth > maxEncapDepth {
		return
	}
	g := packet.GRE{
		ChecksumPresent: tun.OCsum,
		KeyPresent:      tun.HasOKey,
		Key:             tun.OKey,
		SeqPresent:      tun.OSeq,
		Seq:             tun.txSeq,
		Proto:           packet.EtherTypeIPv4,
	}
	outer := packet.IPv4{TTL: originTTL, Proto: packet.ProtoGRE, Src: tun.Local, Dst: tun.Remote}
	pkt, err := packet.Serialize(inner, outer, g)
	if err != nil {
		return
	}
	// The encapsulated packet is locally originated (iif unset): tunnel
	// policy rules like `ip rule add iff greA …` must not match it.
	k.routeAndSend("", tun.Remote, pkt, depth+1)
}

// ---------------------------------------------------------------------------
// MPLS

func (k *Kernel) mplsInput(port string, data []byte) {
	k.mu.Lock()
	i, ok := k.ifaces[port]
	if !ok || i.LabelSpace < 0 || !k.mpls.loaded {
		k.mu.Unlock()
		return
	}
	space := i.LabelSpace
	k.mu.Unlock()

	m, n, _, err := packet.DecodeMPLS(data)
	if err != nil || len(m.Entries) == 0 {
		return
	}
	top := m.Entries[0]

	k.mu.Lock()
	key, ok := k.mpls.xc[ilmKey{top.Label, space}]
	if !ok {
		k.mu.Unlock()
		return
	}
	nh := k.mpls.nhlfe[key]
	k.mu.Unlock()
	if nh == nil {
		return
	}

	// Pop the matched label; keep any remaining stack.
	rest := m.Entries[1:]
	inner := data[n:]
	// Reconstruct the packet below the popped label: remaining labels
	// were already consumed by DecodeMPLS, so rebuild them.
	k.nhlfeForward(nh, rest, inner)
}

func (k *Kernel) mplsOutput(key int, inner []byte, depth int) {
	if depth > maxEncapDepth {
		return
	}
	k.mu.Lock()
	nh := k.mpls.nhlfe[key]
	loaded := k.mpls.loaded
	k.mu.Unlock()
	if nh == nil || !loaded {
		return
	}
	k.nhlfeForward(nh, nil, inner)
}

// nhlfeForward applies an NHLFE to a packet with the given remaining label
// stack (top first) and inner payload.
func (k *Kernel) nhlfeForward(nh *NHLFE, rest []packet.MPLSEntry, inner []byte) {
	if nh.MTU > 0 && len(inner) > nh.MTU {
		return
	}
	var stack []packet.MPLSEntry
	for _, l := range nh.PushLabels {
		stack = append(stack, packet.MPLSEntry{Label: l, TTL: 64})
	}
	stack = append(stack, rest...)

	if len(stack) == 0 {
		// Egress LSR: forward the inner IP packet straight to the
		// configured nexthop.
		k.arpResolve(nh.NexthopDev, nh.NexthopIP, packet.EtherTypeIPv4, inner)
		return
	}
	pkt, err := packet.Serialize(inner, packet.MPLS{Entries: stack})
	if err != nil {
		return
	}
	k.arpResolve(nh.NexthopDev, nh.NexthopIP, packet.EtherTypeMPLS, pkt)
}
