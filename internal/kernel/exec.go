package kernel

import (
	"fmt"
	"net/netip"
	"path"
	"strconv"
	"strings"
)

// Exec parses and applies one device-level configuration line in the
// dialects the paper's figures use: Linux iproute2/ifconfig/sysctl
// (Fig 7a), the mpls-linux tool (Fig 8a) and Cisco CatOS (Fig 9a).
// Comment and blank lines are ignored. The returned string is the
// command's output (e.g. the NHLFE key line that Fig 8a extracts with
// `grep key | cut -c 17-26`).
func (k *Kernel) Exec(line string) (string, error) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") || trimmed == "#!/bin/bash" {
		return "", nil
	}
	k.mu.Lock()
	k.execLog = append(k.execLog, trimmed)
	k.mu.Unlock()

	f := strings.Fields(trimmed)
	out, err := k.exec1(trimmed, f)
	if err != nil {
		return "", fmt.Errorf("kernel[%s]: %q: %w", k.dev, trimmed, err)
	}
	return out, nil
}

// ExecScript runs every line of a multi-line script, stopping at the first
// error. It returns the concatenated outputs.
func (k *Kernel) ExecScript(script string) (string, error) {
	var outs []string
	for _, line := range strings.Split(script, "\n") {
		out, err := k.Exec(line)
		if err != nil {
			return strings.Join(outs, "\n"), err
		}
		if out != "" {
			outs = append(outs, out)
		}
	}
	return strings.Join(outs, "\n"), nil
}

func (k *Kernel) exec1(line string, f []string) (string, error) {
	switch f[0] {
	case "insmod":
		if len(f) != 2 {
			return "", fmt.Errorf("usage: insmod <path>")
		}
		name := strings.TrimSuffix(path.Base(f[1]), ".ko")
		k.mu.Lock()
		k.modules[name] = true
		if name == "mpls" || name == "mpls4" {
			k.mpls.loaded = true
		}
		k.mu.Unlock()
		return "", nil

	case "modprobe":
		if len(f) != 2 {
			return "", fmt.Errorf("usage: modprobe <module>")
		}
		k.mu.Lock()
		k.modules[f[1]] = true
		if f[1] == "mpls" || f[1] == "mpls4" {
			k.mpls.loaded = true
		}
		k.mu.Unlock()
		return "", nil

	case "echo":
		return "", k.execEcho(line, f)

	case "ifconfig":
		if len(f) < 3 {
			return "", fmt.Errorf("usage: ifconfig <iface> <addr>")
		}
		addr, err := netip.ParseAddr(f[2])
		if err != nil {
			return "", err
		}
		bits := 32
		for i := 3; i+1 < len(f); i++ {
			if f[i] == "netmask" {
				m, err := netip.ParseAddr(f[i+1])
				if err != nil {
					return "", err
				}
				bits = maskBits(m)
			}
		}
		return "", k.AddAddr(f[1], netip.PrefixFrom(addr, bits))

	case "ip":
		return k.execIP(f)

	case "mpls":
		return k.execMPLS(f)

	// ----- CatOS dialect -----
	case "set":
		return "", k.execCatOSSet(f)
	case "interface":
		if len(f) != 2 {
			return "", fmt.Errorf("usage: interface <port>")
		}
		k.mu.Lock()
		k.bridge.catosCtx = f[1]
		k.mu.Unlock()
		return "", nil
	case "switchport":
		return "", k.execCatOSSwitchport(f)
	case "vlan":
		// `vlan dot1q tag native`
		if len(f) == 4 && f[1] == "dot1q" && f[2] == "tag" && f[3] == "native" {
			k.mu.Lock()
			k.bridge.tagNative = true
			k.mu.Unlock()
			return "", nil
		}
		return "", fmt.Errorf("unsupported vlan command")
	case "exit", "end":
		k.mu.Lock()
		k.bridge.catosCtx = ""
		k.mu.Unlock()
		return "", nil
	}
	return "", fmt.Errorf("unsupported command %q", f[0])
}

func maskBits(m netip.Addr) int {
	b := m.As4()
	bits := 0
	for _, x := range b {
		for i := 7; i >= 0; i-- {
			if x&(1<<i) != 0 {
				bits++
			}
		}
	}
	return bits
}

// execEcho handles the two sysctl/rt_tables idioms of Fig 7a:
//
//	echo 1 > /proc/sys/net/ipv4/ip_forward
//	echo 202 tun-1-2 >> /etc/iproute2/rt_tables
func (k *Kernel) execEcho(line string, f []string) error {
	if strings.Contains(line, "/proc/sys/net/ipv4/ip_forward") {
		if len(f) >= 2 && f[1] == "1" {
			k.SetIPForward(true)
			return nil
		}
		k.SetIPForward(false)
		return nil
	}
	if strings.Contains(line, "/proc/sys/net/ipv4/conf") && strings.Contains(line, "proxy_arp") {
		k.SetProxyARP(len(f) >= 2 && f[1] == "1")
		return nil
	}
	if strings.Contains(line, "rt_tables") {
		if len(f) < 3 {
			return fmt.Errorf("usage: echo <num> <name> >> /etc/iproute2/rt_tables")
		}
		num, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("table number: %w", err)
		}
		k.RegisterTable(num, f[2])
		return nil
	}
	return fmt.Errorf("unsupported echo target")
}

func (k *Kernel) execIP(f []string) (string, error) {
	if len(f) < 2 {
		return "", fmt.Errorf("truncated ip command")
	}
	switch f[1] {
	case "tunnel":
		return "", k.execIPTunnel(f)
	case "rule":
		return "", k.execIPRule(f)
	case "route":
		return "", k.execIPRoute(f)
	}
	return "", fmt.Errorf("unsupported ip subcommand %q", f[1])
}

// execIPTunnel: ip tunnel add name greA mode gre remote R local L
// [ikey N] [okey N] [icsum] [ocsum] [iseq] [oseq]
// (also accepts `ip tunnel add greA mode gre ...`).
func (k *Kernel) execIPTunnel(f []string) error {
	if len(f) < 4 || f[2] != "add" {
		return fmt.Errorf("only `ip tunnel add` is supported")
	}
	args := f[3:]
	var t GRETunnel
	if args[0] == "name" {
		if len(args) < 2 {
			return fmt.Errorf("missing tunnel name")
		}
		t.Name = args[1]
		args = args[2:]
	} else {
		t.Name = args[0]
		args = args[1:]
	}
	mode := ""
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "mode":
			i++
			if i >= len(args) {
				return fmt.Errorf("missing mode")
			}
			mode = args[i]
		case "remote":
			i++
			a, err := netip.ParseAddr(args[i])
			if err != nil {
				return err
			}
			t.Remote = a
		case "local":
			i++
			a, err := netip.ParseAddr(args[i])
			if err != nil {
				return err
			}
			t.Local = a
		case "ikey":
			i++
			v, err := strconv.ParseUint(args[i], 10, 32)
			if err != nil {
				return err
			}
			t.HasIKey, t.IKey = true, uint32(v)
		case "okey":
			i++
			v, err := strconv.ParseUint(args[i], 10, 32)
			if err != nil {
				return err
			}
			t.HasOKey, t.OKey = true, uint32(v)
		case "icsum":
			t.ICsum = true
		case "ocsum":
			t.OCsum = true
		case "iseq":
			t.ISeq = true
		case "oseq":
			t.OSeq = true
		case "ttl", "tos":
			i++ // accepted, ignored: the abstraction hides these
		default:
			return fmt.Errorf("unknown tunnel option %q", args[i])
		}
	}
	if mode != "gre" {
		return fmt.Errorf("only mode gre is supported, got %q", mode)
	}
	if !t.Remote.IsValid() || !t.Local.IsValid() {
		return fmt.Errorf("tunnel needs remote and local")
	}
	k.mu.Lock()
	loaded := k.modules["ip_gre"]
	k.mu.Unlock()
	if !loaded {
		return fmt.Errorf("ip_gre module not loaded (insmod first)")
	}
	_, err := k.AddGRETunnel(t)
	return err
}

// execIPRule: ip rule add to PREFIX table T | ip rule add iff DEV table T
// ("iff" is the paper's spelling; "iif" is accepted too).
func (k *Kernel) execIPRule(f []string) error {
	if len(f) < 3 || f[2] != "add" {
		return fmt.Errorf("only `ip rule add` is supported")
	}
	var r PolicyRule
	args := f[3:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "to":
			i++
			p, err := parsePrefixOrAddr(args[i])
			if err != nil {
				return err
			}
			r.To = p
		case "iff", "iif":
			i++
			r.IIF = args[i]
		case "table":
			i++
			r.Table = args[i]
		default:
			return fmt.Errorf("unknown rule option %q", args[i])
		}
	}
	if r.Table == "" {
		return fmt.Errorf("rule needs a table")
	}
	return k.AddRule(r)
}

// execIPRoute: ip route add [to] (default|PREFIX|ADDR)
// [via ADDR] [dev DEV] [table T] [nexthop DEV ADDR] [mpls KEY]
func (k *Kernel) execIPRoute(f []string) error {
	if len(f) < 4 || f[2] != "add" {
		return fmt.Errorf("only `ip route add` is supported")
	}
	args := f[3:]
	if args[0] == "to" {
		args = args[1:]
	}
	var rt Route
	rt.MPLSKey = -1
	table := ""
	if args[0] != "default" {
		p, err := parsePrefixOrAddr(args[0])
		if err != nil {
			return err
		}
		rt.Dst = p
	}
	args = args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "via":
			i++
			a, err := netip.ParseAddr(args[i])
			if err != nil {
				return err
			}
			rt.Via = a
		case "dev":
			i++
			rt.Dev = args[i]
		case "table":
			i++
			table = args[i]
		case "mpls":
			i++
			key, err := parseKey(args[i])
			if err != nil {
				return err
			}
			rt.MPLSKey = key
		default:
			return fmt.Errorf("unknown route option %q", args[i])
		}
	}
	return k.AddRoute(table, rt)
}

func parsePrefixOrAddr(s string) (netip.Prefix, error) {
	if strings.Contains(s, "/") {
		return netip.ParsePrefix(s)
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, err
	}
	return netip.PrefixFrom(a, a.BitLen()), nil
}

func parseKey(s string) (int, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseInt(s[2:], 16, 64)
		return int(v), err
	}
	v, err := strconv.Atoi(s)
	return v, err
}

// execMPLS handles the mpls-linux tool dialect of Fig 8a.
func (k *Kernel) execMPLS(f []string) (string, error) {
	k.mu.Lock()
	loaded := k.mpls.loaded
	k.mu.Unlock()
	if !loaded {
		return "", fmt.Errorf("mpls modules not loaded (modprobe mpls; modprobe mpls4)")
	}
	if len(f) < 2 {
		return "", fmt.Errorf("truncated mpls command")
	}
	switch f[1] {
	case "labelspace":
		// mpls labelspace set dev eth2 labelspace 0
		var dev string
		space := -1
		for i := 2; i < len(f); i++ {
			switch f[i] {
			case "set":
			case "dev":
				i++
				dev = f[i]
			case "labelspace":
				i++
				v, err := strconv.Atoi(f[i])
				if err != nil {
					return "", err
				}
				space = v
			}
		}
		if dev == "" || space < 0 {
			return "", fmt.Errorf("usage: mpls labelspace set dev <dev> labelspace <n>")
		}
		return "", k.SetLabelSpace(dev, space)

	case "ilm":
		// mpls ilm add label gen 10001 labelspace 0
		var label uint64
		space := 0
		seenLabel := false
		for i := 2; i < len(f); i++ {
			switch f[i] {
			case "add":
			case "label":
				i += 2 // skip "gen"
				v, err := strconv.ParseUint(f[i], 10, 32)
				if err != nil {
					return "", err
				}
				label, seenLabel = v, true
			case "labelspace":
				i++
				v, err := strconv.Atoi(f[i])
				if err != nil {
					return "", err
				}
				space = v
			}
		}
		if !seenLabel {
			return "", fmt.Errorf("ilm needs `label gen <n>`")
		}
		k.AddILM(uint32(label), space)
		return "", nil

	case "nhlfe":
		// mpls nhlfe add key 0 [mtu 1500] instructions [push gen 2001]
		// nexthop eth2 ipv4 204.9.168.2
		n := NHLFE{}
		for i := 2; i < len(f); i++ {
			switch f[i] {
			case "add", "instructions":
			case "key":
				i++ // `key 0` requests allocation
			case "mtu":
				i++
				v, err := strconv.Atoi(f[i])
				if err != nil {
					return "", err
				}
				n.MTU = v
			case "push":
				i += 2 // skip "gen"
				v, err := strconv.ParseUint(f[i], 10, 32)
				if err != nil {
					return "", err
				}
				n.PushLabels = append(n.PushLabels, uint32(v))
			case "nexthop":
				i++
				n.NexthopDev = f[i]
				i++
				if f[i] != "ipv4" {
					return "", fmt.Errorf("nexthop needs `ipv4 <addr>`")
				}
				i++
				a, err := netip.ParseAddr(f[i])
				if err != nil {
					return "", err
				}
				n.NexthopIP = a
			default:
				return "", fmt.Errorf("unknown nhlfe token %q", f[i])
			}
		}
		if n.NexthopDev == "" {
			return "", fmt.Errorf("nhlfe needs a nexthop")
		}
		key := k.AddNHLFE(n)
		// Output formatted so Fig 8a's `grep key | cut -c 17-26`
		// extracts the 0x-prefixed key.
		return fmt.Sprintf("NHLFE entry key 0x%08x mtu %d", key, n.MTU), nil

	case "xc":
		// mpls xc add ilm label gen 10001 ilm labelspace 0 nhlfe key $KEY
		var label uint64
		space := 0
		nhlfeKey := -1
		seenLabel := false
		for i := 2; i < len(f); i++ {
			switch f[i] {
			case "add", "ilm":
			case "label":
				i += 2
				v, err := strconv.ParseUint(f[i], 10, 32)
				if err != nil {
					return "", err
				}
				label, seenLabel = v, true
			case "labelspace":
				i++
				v, err := strconv.Atoi(f[i])
				if err != nil {
					return "", err
				}
				space = v
			case "nhlfe":
				i += 2 // skip "key"
				v, err := parseKey(f[i])
				if err != nil {
					return "", err
				}
				nhlfeKey = v
			}
		}
		if !seenLabel || nhlfeKey < 0 {
			return "", fmt.Errorf("xc needs ilm label and nhlfe key")
		}
		return "", k.AddXC(uint32(label), space, nhlfeKey)
	}
	return "", fmt.Errorf("unsupported mpls subcommand %q", f[1])
}

// execCatOSSet handles `set vlan N name X mtu M` and `set vlan N <port>`.
func (k *Kernel) execCatOSSet(f []string) error {
	if len(f) < 3 || f[1] != "vlan" {
		return fmt.Errorf("unsupported set command")
	}
	vid64, err := strconv.ParseUint(f[2], 10, 16)
	if err != nil {
		return fmt.Errorf("vlan id: %w", err)
	}
	vid := uint16(vid64)
	if len(f) == 4 && !strings.Contains(f[3], "=") {
		// `set vlan 22 gigabitethernet0/9`: trunk membership.
		k.SetPortTrunk(f[3], vid)
		return nil
	}
	name, mtu := "", 0
	for i := 3; i < len(f); i++ {
		switch f[i] {
		case "name":
			i++
			name = f[i]
		case "mtu":
			i++
			v, err := strconv.Atoi(f[i])
			if err != nil {
				return err
			}
			mtu = v
		default:
			// A bare trailing token is a port to add to the VLAN.
			k.SetPortTrunk(f[i], vid)
		}
	}
	k.DefineVLAN(vid, name, mtu)
	return nil
}

// execCatOSSwitchport handles `switchport access vlan N` and
// `switchport mode dot1q-tunnel` inside an `interface` context.
func (k *Kernel) execCatOSSwitchport(f []string) error {
	k.mu.Lock()
	ctx := k.bridge.catosCtx
	k.mu.Unlock()
	if ctx == "" {
		return fmt.Errorf("switchport outside `interface` context")
	}
	if len(f) >= 4 && f[1] == "access" && f[2] == "vlan" {
		vid, err := strconv.ParseUint(f[3], 10, 16)
		if err != nil {
			return err
		}
		k.mu.Lock()
		p := k.bridge.port(ctx)
		tunnel := p.Mode == ModeDot1qTunnel
		k.mu.Unlock()
		k.SetPortAccess(ctx, uint16(vid), tunnel)
		return nil
	}
	if len(f) >= 3 && f[1] == "mode" && f[2] == "dot1q-tunnel" {
		k.mu.Lock()
		p := k.bridge.port(ctx)
		vid := p.AccessVID
		k.mu.Unlock()
		k.SetPortAccess(ctx, vid, true)
		return nil
	}
	return fmt.Errorf("unsupported switchport command")
}
