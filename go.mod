module conman

go 1.21
