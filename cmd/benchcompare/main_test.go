package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineRows() []row {
	return []row{
		{Benchmark: "LinearApply", Scenario: "GRE", N: 64, Mode: "sequential", Seconds: 0.450},
		{Benchmark: "LinearApply", Scenario: "GRE+IGP", N: 64, Mode: "concurrent", Seconds: 0.500},
		{Benchmark: "FindPath", Scenario: "VLAN", N: 128, Mode: "best-first", Seconds: 0.007, Expanded: 1272},
		{Benchmark: "FindPath", Scenario: "VLAN", N: 16, Mode: "best-first", Seconds: 0.0005, Expanded: 152},
	}
}

// TestComparePassesOnIdenticalRun: the real-run shape — identical
// results never fail the gate.
func TestComparePassesOnIdenticalRun(t *testing.T) {
	base := baselineRows()
	report, failures := compare(base, base, 2.0, 0.005)
	if len(failures) != 0 {
		t.Fatalf("identical run failed the gate:\n%s", strings.Join(failures, "\n"))
	}
	if len(report) != len(base) {
		t.Fatalf("report has %d lines, want %d", len(report), len(base))
	}
}

// TestCompareFailsOnInjectedWallClockRegression pins the acceptance
// criterion: a >2x wall-clock regression in a Configure (LinearApply)
// row fails the gate.
func TestCompareFailsOnInjectedWallClockRegression(t *testing.T) {
	base := baselineRows()
	cur := append([]row(nil), base...)
	cur[0].Seconds = base[0].Seconds * 2.5 // injected 2.5x regression
	_, failures := compare(base, cur, 2.0, 0.005)
	if len(failures) != 1 || !strings.Contains(failures[0], "LinearApply/GRE/n=64/sequential") {
		t.Fatalf("injected wall-clock regression not caught: %v", failures)
	}
}

// TestCompareFailsOnInjectedExpandedRegression: a >2x growth in the
// deterministic expanded metric of a FindPath row fails the gate even
// when wall-clock looks fine.
func TestCompareFailsOnInjectedExpandedRegression(t *testing.T) {
	base := baselineRows()
	cur := append([]row(nil), base...)
	cur[2].Expanded = base[2].Expanded * 3 // search regressed
	cur[2].Seconds = base[2].Seconds       // but wall-clock hid it
	_, failures := compare(base, cur, 2.0, 0.005)
	if len(failures) != 1 || !strings.Contains(failures[0], "expanded") {
		t.Fatalf("injected expanded regression not caught: %v", failures)
	}
}

// TestCompareWallClockFloor: micro-rows under the floor never fail on
// seconds (scheduler noise), but their expanded metric still gates.
func TestCompareWallClockFloor(t *testing.T) {
	base := baselineRows()
	cur := append([]row(nil), base...)
	cur[3].Seconds = base[3].Seconds * 10 // noisy micro-row: ignored
	_, failures := compare(base, cur, 2.0, 0.005)
	if len(failures) != 0 {
		t.Fatalf("sub-floor wall-clock noise failed the gate: %v", failures)
	}
	cur[3].Expanded = base[3].Expanded * 4 // real search regression: caught
	_, failures = compare(base, cur, 2.0, 0.005)
	if len(failures) != 1 {
		t.Fatalf("sub-floor expanded regression not caught: %v", failures)
	}
}

// TestCompareFailsOnMissingRow: dropping a benchmark row is a coverage
// regression, not a pass.
func TestCompareFailsOnMissingRow(t *testing.T) {
	base := baselineRows()
	cur := base[:len(base)-1]
	_, failures := compare(base, cur, 2.0, 0.005)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("missing row not caught: %v", failures)
	}
}

// TestCompareReportsNewRows: rows without a baseline are informational,
// with a hint to refresh the baseline.
func TestCompareReportsNewRows(t *testing.T) {
	base := baselineRows()
	cur := append(append([]row(nil), base...),
		row{Benchmark: "LinearApply", Scenario: "GRE+IGP", N: 128, Mode: "concurrent", Seconds: 1.0})
	report, failures := compare(base, cur, 2.0, 0.005)
	if len(failures) != 0 {
		t.Fatalf("new row failed the gate: %v", failures)
	}
	found := false
	for _, line := range report {
		if strings.HasPrefix(line, "new  ") && strings.Contains(line, "n=128") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new row not reported:\n%s", strings.Join(report, "\n"))
	}
}

// TestRenderSummaryMarkdown: the -summary mode renders every delta as a
// markdown table row and flags regressions without hiding them.
func TestRenderSummaryMarkdown(t *testing.T) {
	base := baselineRows()
	cur := append([]row(nil), base[:len(base)-1]...) // drop one row
	cur[0].Seconds = base[0].Seconds * 3             // regress another
	cur = append(cur, row{Benchmark: "Transport", Scenario: "lsa-burst", N: 512, Mode: "batched", Seconds: 0.06, Expanded: 8})
	out := renderSummary(evaluate(base, cur, 2.0, 0.005), 2.0)
	for _, want := range []string{
		"### Benchmark delta vs baseline",
		"**2 row(s) regressed.**",
		"| Row | Status |",
		"`LinearApply/GRE/n=64/sequential` | ❌ fail",
		"❌ missing",
		"`Transport/lsa-burst/n=512/batched` | 🆕 new",
		"3.00x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n|")-2 != len(base)+1 { // header+separator excluded; one new row added
		t.Errorf("summary row count off:\n%s", out)
	}
}

// TestLoadRoundTrip exercises the file loading against the JSON shape
// `conman bench` writes.
func TestLoadRoundTrip(t *testing.T) {
	rows := baselineRows()
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) || got[2].Expanded != rows[2].Expanded {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing file did not error")
	}
}
