// Command benchcompare is the CI perf-regression gate: it diffs a fresh
// BENCH_scale.json (produced by `conman bench`) against the committed
// BENCH_baseline.json and exits non-zero when any FindPath or
// LinearApply (configure) row regressed past the threshold — by default
// more than 2x wall-clock, or more than 2x in the deterministic
// `expanded` search-state metric.
//
// Wall-clock comparison is skipped for rows whose baseline is below
// -min-seconds (default 100ms): the long latency-dominated rows are
// stable across machines, but a ~10ms row can double on a loaded
// shared CI runner from scheduler jitter alone. The `expanded` metric
// has no floor — it is exact and machine-independent, so any >2x
// growth there is a real search regression. A baseline row with no
// matching fresh row also fails: a silently dropped benchmark is a
// coverage regression, not a pass.
//
// When rows change legitimately (a new scenario, a new n), refresh the
// baseline with:
//
//	go run ./cmd/conman bench -out BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// row mirrors the benchResult records `conman bench` emits.
type row struct {
	Benchmark string  `json:"benchmark"`
	Scenario  string  `json:"scenario"`
	N         int     `json:"n"`
	Mode      string  `json:"mode"`
	Seconds   float64 `json:"seconds"`
	Sent      int     `json:"sent,omitempty"`
	Received  int     `json:"received,omitempty"`
	Expanded  int     `json:"expanded,omitempty"`
}

func (r row) key() string {
	return fmt.Sprintf("%s/%s/n=%d/%s", r.Benchmark, r.Scenario, r.N, r.Mode)
}

// compare returns human-readable report lines and the subset that are
// failures. Baseline rows drive the comparison; fresh rows without a
// baseline are reported as informational.
func compare(baseline, current []row, maxRatio, minSeconds float64) (report, failures []string) {
	cur := make(map[string]row, len(current))
	for _, r := range current {
		cur[r.key()] = r
	}
	seen := make(map[string]bool, len(baseline))
	for _, base := range baseline {
		key := base.key()
		seen[key] = true
		got, ok := cur[key]
		if !ok {
			f := fmt.Sprintf("FAIL %s: row missing from current results (coverage regression)", key)
			report, failures = append(report, f), append(failures, f)
			continue
		}
		switch {
		case base.Expanded > 0 && float64(got.Expanded) > maxRatio*float64(base.Expanded):
			f := fmt.Sprintf("FAIL %s: expanded %d vs baseline %d (%.2fx > %.1fx)",
				key, got.Expanded, base.Expanded, float64(got.Expanded)/float64(base.Expanded), maxRatio)
			report, failures = append(report, f), append(failures, f)
		case base.Seconds >= minSeconds && got.Seconds > maxRatio*base.Seconds:
			f := fmt.Sprintf("FAIL %s: %.4fs vs baseline %.4fs (%.2fx > %.1fx)",
				key, got.Seconds, base.Seconds, got.Seconds/base.Seconds, maxRatio)
			report, failures = append(report, f), append(failures, f)
		default:
			note := ""
			if base.Seconds < minSeconds {
				note = " [wall-clock below floor, expanded-only]"
			}
			report = append(report, fmt.Sprintf("ok   %s: %.4fs vs %.4fs, expanded %d vs %d%s",
				key, got.Seconds, base.Seconds, got.Expanded, base.Expanded, note))
		}
	}
	for _, r := range current {
		if !seen[r.key()] {
			report = append(report, fmt.Sprintf("new  %s: %.4fs, expanded %d (no baseline — refresh BENCH_baseline.json)",
				r.key(), r.Seconds, r.Expanded))
		}
	}
	return report, failures
}

func load(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
	currentPath := flag.String("current", "BENCH_scale.json", "fresh benchmark results")
	maxRatio := flag.Float64("max-ratio", 2.0, "failure threshold: current may not exceed baseline by more than this factor")
	minSeconds := flag.Float64("min-seconds", 0.1, "skip wall-clock comparison for baseline rows faster than this")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	report, failures := compare(baseline, current, *maxRatio, *minSeconds)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d row(s) regressed beyond %.1fx\n", len(failures), *maxRatio)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: %d baseline row(s) within %.1fx\n", len(baseline), *maxRatio)
}
