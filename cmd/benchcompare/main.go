// Command benchcompare is the CI perf-regression gate: it diffs a fresh
// BENCH_scale.json (produced by `conman bench`) against the committed
// BENCH_baseline.json and exits non-zero when any FindPath or
// LinearApply (configure) row regressed past the threshold — by default
// more than 2x wall-clock, or more than 2x in the deterministic
// `expanded` search-state metric.
//
// Wall-clock comparison is skipped for rows whose baseline is below
// -min-seconds (default 100ms): the long latency-dominated rows are
// stable across machines, but a ~10ms row can double on a loaded
// shared CI runner from scheduler jitter alone. The `expanded` metric
// has no floor — it is exact and machine-independent, so any >2x
// growth there is a real search regression. A baseline row with no
// matching fresh row also fails: a silently dropped benchmark is a
// coverage regression, not a pass.
//
// With -summary the same comparison renders as a GitHub-flavoured
// markdown delta table on stdout (for $GITHUB_STEP_SUMMARY) and always
// exits zero — the gate run stays the authority; the summary is a
// report.
//
// When rows change legitimately (a new scenario, a new n), refresh the
// baseline with:
//
//	go run ./cmd/conman bench -out BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// row mirrors the benchResult records `conman bench` emits.
type row struct {
	Benchmark string  `json:"benchmark"`
	Scenario  string  `json:"scenario"`
	N         int     `json:"n"`
	Mode      string  `json:"mode"`
	Seconds   float64 `json:"seconds"`
	Sent      int     `json:"sent,omitempty"`
	Received  int     `json:"received,omitempty"`
	Expanded  int     `json:"expanded,omitempty"`
}

func (r row) key() string {
	return fmt.Sprintf("%s/%s/n=%d/%s", r.Benchmark, r.Scenario, r.N, r.Mode)
}

// verdict classifies one baseline/current row pair.
type verdict int

const (
	vOK      verdict = iota
	vFail            // regressed beyond the ratio gate
	vMissing         // baseline row absent from current results
	vNew             // current row with no baseline
)

// delta is the evaluated comparison of one row key.
type delta struct {
	key       string
	v         verdict
	base, cur row
	// floored marks rows whose wall clock was under the -min-seconds
	// floor (expanded-only comparison).
	floored bool
	reason  string // failure detail for vFail/vMissing
}

// evaluate applies the regression gates to every row, baseline-driven,
// preserving baseline order; current-only rows append at the end.
func evaluate(baseline, current []row, maxRatio, minSeconds float64) []delta {
	cur := make(map[string]row, len(current))
	for _, r := range current {
		cur[r.key()] = r
	}
	seen := make(map[string]bool, len(baseline))
	var out []delta
	for _, base := range baseline {
		key := base.key()
		seen[key] = true
		got, ok := cur[key]
		d := delta{key: key, base: base, cur: got, floored: base.Seconds < minSeconds}
		switch {
		case !ok:
			d.v = vMissing
			d.reason = "row missing from current results (coverage regression)"
		case base.Expanded > 0 && float64(got.Expanded) > maxRatio*float64(base.Expanded):
			d.v = vFail
			d.reason = fmt.Sprintf("expanded %d vs baseline %d (%.2fx > %.1fx)",
				got.Expanded, base.Expanded, float64(got.Expanded)/float64(base.Expanded), maxRatio)
		case base.Seconds >= minSeconds && got.Seconds > maxRatio*base.Seconds:
			d.v = vFail
			d.reason = fmt.Sprintf("%.4fs vs baseline %.4fs (%.2fx > %.1fx)",
				got.Seconds, base.Seconds, got.Seconds/base.Seconds, maxRatio)
		default:
			d.v = vOK
		}
		out = append(out, d)
	}
	for _, r := range current {
		if !seen[r.key()] {
			out = append(out, delta{key: r.key(), v: vNew, cur: r})
		}
	}
	return out
}

// renderText formats deltas as the gate's line-per-row report and
// returns the failure lines separately.
func renderText(deltas []delta) (report, failures []string) {
	for _, d := range deltas {
		switch d.v {
		case vMissing, vFail:
			f := fmt.Sprintf("FAIL %s: %s", d.key, d.reason)
			report, failures = append(report, f), append(failures, f)
		case vNew:
			report = append(report, fmt.Sprintf("new  %s: %.4fs, expanded %d (no baseline — refresh BENCH_baseline.json)",
				d.key, d.cur.Seconds, d.cur.Expanded))
		default:
			note := ""
			if d.floored {
				note = " [wall-clock below floor, expanded-only]"
			}
			report = append(report, fmt.Sprintf("ok   %s: %.4fs vs %.4fs, expanded %d vs %d%s",
				d.key, d.cur.Seconds, d.base.Seconds, d.cur.Expanded, d.base.Expanded, note))
		}
	}
	return report, failures
}

// compare runs the gate end to end: evaluate then render the text
// report.
func compare(baseline, current []row, maxRatio, minSeconds float64) (report, failures []string) {
	return renderText(evaluate(baseline, current, maxRatio, minSeconds))
}

// renderSummary formats deltas as a GitHub-flavoured markdown table.
func renderSummary(deltas []delta, maxRatio float64) string {
	var b strings.Builder
	fails := 0
	for _, d := range deltas {
		if d.v == vFail || d.v == vMissing {
			fails++
		}
	}
	fmt.Fprintf(&b, "### Benchmark delta vs baseline (gate: %.1fx)\n\n", maxRatio)
	if fails > 0 {
		fmt.Fprintf(&b, "**%d row(s) regressed.**\n\n", fails)
	}
	b.WriteString("| Row | Status | Baseline | Current | Ratio | Expanded (base → cur) |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|\n")
	for _, d := range deltas {
		status, baseS, curS, ratio, exp := "✅ ok", "—", "—", "—", "—"
		switch d.v {
		case vMissing:
			status, baseS = "❌ missing", fmt.Sprintf("%.4fs", d.base.Seconds)
		case vNew:
			status, curS = "🆕 new", fmt.Sprintf("%.4fs", d.cur.Seconds)
			if d.cur.Expanded > 0 {
				exp = fmt.Sprintf("— → %d", d.cur.Expanded)
			}
		default:
			if d.v == vFail {
				status = "❌ fail"
			} else if d.floored {
				status = "✅ ok (floored)"
			}
			baseS = fmt.Sprintf("%.4fs", d.base.Seconds)
			curS = fmt.Sprintf("%.4fs", d.cur.Seconds)
			if d.base.Seconds > 0 {
				ratio = fmt.Sprintf("%.2fx", d.cur.Seconds/d.base.Seconds)
			}
			if d.base.Expanded > 0 || d.cur.Expanded > 0 {
				exp = fmt.Sprintf("%d → %d", d.base.Expanded, d.cur.Expanded)
			}
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s |\n", d.key, status, baseS, curS, ratio, exp)
	}
	return b.String()
}

func load(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
	currentPath := flag.String("current", "BENCH_scale.json", "fresh benchmark results")
	maxRatio := flag.Float64("max-ratio", 2.0, "failure threshold: current may not exceed baseline by more than this factor")
	minSeconds := flag.Float64("min-seconds", 0.1, "skip wall-clock comparison for baseline rows faster than this")
	summary := flag.Bool("summary", false, "emit a markdown delta table instead of the gate report and always exit zero")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	deltas := evaluate(baseline, current, *maxRatio, *minSeconds)
	if *summary {
		fmt.Print(renderSummary(deltas, *maxRatio))
		return
	}
	report, failures := renderText(deltas)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d row(s) regressed beyond %.1fx\n", len(failures), *maxRatio)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: %d baseline row(s) within %.1fx\n", len(baseline), *maxRatio)
}
