// Command conmanvet is the repo's static-analysis suite: a vet-style
// multichecker enforcing CONMan's module-invariant contracts.
//
// It bundles three analyzers (see docs/analysis.md):
//
//	clonecheck  — Clone() methods must deep-copy every reference field
//	lockcheck   — `guarded by mu` fields and no blocking under locks
//	pairedstate — kernel installers need removers on a delete path
//
// Run it either way:
//
//	go vet -vettool=$(which conmanvet) ./...   # standard vettool protocol
//	conmanvet ./...                            # self-hosting shortcut
//
// The second form re-execs `go vet -vettool=<self>` so the go build
// system supplies type information and caching; there is no separate
// loader to keep in sync.
package main

import (
	"conman/internal/analysis"
	"conman/internal/analysis/clonecheck"
	"conman/internal/analysis/lockcheck"
	"conman/internal/analysis/pairedstate"
)

func main() {
	analysis.Main(
		clonecheck.Analyzer,
		lockcheck.Analyzer,
		pairedstate.Analyzer,
	)
}
