// Command conman drives the CONMan reproduction: the declarative
// intent lifecycle (plan / apply / destroy) on the paper's evaluation
// testbeds, the multi-intent store (submit / withdraw / reconcile) on a
// shared-core demo topology, regeneration of every table and figure of
// §III, and the scale benchmark with JSON output for CI trend tracking.
//
// Usage:
//
//	conman plan <gre|mpls|vlan>
//	conman apply [-dry-run] <gre|mpls|vlan>
//	conman destroy [-dry-run] <gre|mpls|vlan>
//	conman submit
//	conman reconcile [-dry-run]
//	conman withdraw [-dry-run] <vpn-c1|vpn-c2>
//	conman daemon [-addr HOST:PORT] [-poll DUR] [-state-dir DIR]
//	conman doctor [-addr HOST:PORT]
//	conman chaos [-topo FAMILY] [-n N] [-pairs K] [-seed S] [-wires W] [-devices D] [-pipes P] [-addr HOST:PORT]
//	conman store log|show|rollback -state-dir DIR [-to SEQ]
//	conman bench [-out FILE]
//	conman table3|table4|table5|table6|fig3|fig5|fig7|fig8|fig9|paths|all
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"conman/internal/experiments"
	"conman/internal/nm"
	"conman/internal/nm/datastore"
	"conman/internal/obs"
	"conman/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "-h", "--help", "help":
		usage()
		return
	case "plan", "apply", "destroy":
		if err := runIntent(cmd, args); err != nil {
			fmt.Fprintf(os.Stderr, "conman %s: %v\n", cmd, err)
			os.Exit(1)
		}
		return
	case "submit", "reconcile", "withdraw":
		if err := runStore(cmd, args); err != nil {
			code, lines := storeFailure(cmd, err)
			for _, line := range lines {
				fmt.Fprintln(os.Stderr, line)
			}
			os.Exit(code)
		}
		return
	case "daemon":
		if err := runDaemon(args); err != nil {
			fmt.Fprintf(os.Stderr, "conman daemon: %v\n", err)
			os.Exit(1)
		}
		return
	case "doctor":
		os.Exit(runDoctor(args))
	case "store":
		if err := runStoreAdmin(args); err != nil {
			fmt.Fprintf(os.Stderr, "conman store: %v\n", err)
			os.Exit(1)
		}
		return
	case "bench":
		if err := runBench(args); err != nil {
			fmt.Fprintf(os.Stderr, "conman bench: %v\n", err)
			os.Exit(1)
		}
		return
	case "chaos":
		if err := runChaosCmd(args); err != nil {
			fmt.Fprintf(os.Stderr, "conman chaos: %v\n", err)
			os.Exit(1)
		}
		return
	case "transport":
		if err := runTransport(args); err != nil {
			fmt.Fprintf(os.Stderr, "conman transport: %v\n", err)
			os.Exit(1)
		}
		return
	}
	cmds := os.Args[1:]
	if len(cmds) == 1 && cmds[0] == "all" {
		cmds = []string{"table3", "table4", "paths", "fig5", "fig7", "fig8", "fig9", "table5", "table6", "fig3"}
	}
	for _, c := range cmds {
		if err := run(c); err != nil {
			fmt.Fprintf(os.Stderr, "conman %s: %v\n", c, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: conman <command>...

intent lifecycle (declarative API):
  plan <scenario>             compute and print the reconciliation plan
                              (dry run; no commands are sent)
  apply [-dry-run] <scenario> reconcile the testbed toward the intent,
                              verify the data plane, prove idempotency
                              (-dry-run stops after printing the plan)
  destroy [-dry-run] <scenario>
                              apply, then tear the intent back down and
                              prove the path is gone (-dry-run prints
                              the teardown plan without executing it)

  scenarios: gre, mpls (Fig 4 routed testbed), vlan (Fig 9 switched)

intent store (multi-goal reconciliation, shared-core diamond demo):
  submit                      register both demo VPN intents in the
                              store and print the store-wide plan
                              (dry run; submitting sends nothing)
  reconcile [-dry-run]        submit both intents and reconcile the
                              network to their union: shared transit
                              state is configured once, both customer
                              pairs are verified, and a second
                              reconcile proves zero commands
                              (-dry-run stops after printing the plan)
  withdraw [-dry-run] <name>  reconcile both intents, withdraw <name>
                              (vpn-c1 or vpn-c2), reconcile again, and
                              prove only its unshared components were
                              removed — the surviving VPN still
                              delivers (-dry-run prints the withdrawal
                              plan without executing it)

autonomous operation:
  daemon [-addr HOST:PORT] [-poll DUR] [-state-dir DIR]
                              run the shared-core demo under the
                              autonomous reconciliation daemon: submit
                              both VPN intents, converge, and keep
                              healing faults with no operator. Serves
                              GET /status and /metrics plus fault
                              injection (POST /chaos/kill-wire?wire=W,
                              /chaos/restore-wire?wire=W). -poll adds a
                              periodic audit pass on top of the event
                              push path (default: pure push).
                              -state-dir persists the intent store
                              (snapshot + journal) there and restores
                              it on startup, so a restarted daemon
                              converges without re-observing devices
                              that did not change
  doctor [-addr HOST:PORT]    snapshot a running daemon's /status,
                              pretty-print intent health (including
                              observation-cache hit rate and journal
                              counters), and exit non-zero when it is
                              unhealthy
  chaos [-topo FAMILY] [-n N] [-pairs K] [-seed S]
        [-wires W] [-devices D] [-pipes P] [-addr HOST:PORT]
                              build a generated fabric (fattree, ring,
                              torus or waxman) carrying K VLAN intents
                              under the daemon, inject W wire cuts, D
                              device kills and P pipe deletions
                              concurrently (seeded, min-cut-guarded),
                              and require autonomous re-convergence
                              with delivery verified. With -addr the
                              process serves /status and /metrics and
                              stays up after the episode so doctor can
                              inspect the healed state

  transport [-n N] [-loss P] [-reorder P] [-dup P] [-jitter DUR]
            [-seed S] [-flush DUR] [-addr HOST:PORT]
                              configure a linear GRE+IGP chain of N
                              routers over real UDP sockets with seeded
                              loss/reorder/duplication/jitter injected
                              below the transport's reliability layer,
                              verify end-to-end delivery, and print the
                              batching/retransmission accounting. With
                              -addr the process stays up serving /status
                              and /metrics (the CI transport-smoke tier)

persistent store (offline, operates on -state-dir):
  store log -state-dir DIR    print the journal: every submit/update/
                              withdraw and apply-begin/commit bracket,
                              with sequence numbers and the snapshot
                              position
  store show -state-dir DIR [-to SEQ]
                              replay snapshot + journal and print the
                              registered intents (as of SEQ, when given)
  store rollback -state-dir DIR -to SEQ
                              rewind the intent set to sequence SEQ by
                              appending a rollback record (history is
                              kept); the next daemon start reconciles
                              the network to the rewound set

benchmarks:
  bench [-out FILE]           run the linear-n scale suite, the
                              StoreReconcile 1-dirty latency probe
                              (k=1 vs k=10000 resident intents) and the
                              daemon convergence row, and emit the
                              results as JSON (for CI artifacts)

paper artifacts:
  table3   GRE module abstraction (Table III)
  table4   device A module inventory (Table IV)
  table5   generic/specific commands & state variables (Table V)
  table6   NM message counts vs path length (Table VI)
  fig3     GRE establishment message sequence (Fig 3)
  fig5     potential-connectivity sub-graph of device A (Fig 5)
  fig7     GRE VPN: today vs CONMan (Fig 7)
  fig8     MPLS VPN: today vs CONMan (Fig 8)
  fig9     VLAN tunnel: today vs CONMan (Fig 9)
  paths    path enumeration between <ETH,A,a> and <ETH,C,f> (§III-C.1)
  all      every paper artifact above`)
}

// scenario resolves a lifecycle scenario name to its testbed builder and
// intent.
func scenario(name string) (func() (*experiments.Testbed, error), nm.Intent, error) {
	switch name {
	case "gre":
		return experiments.BuildFig4, experiments.VPNIntent(experiments.Fig4Goal(), "GRE-IP tunnel"), nil
	case "mpls":
		return experiments.BuildFig4, experiments.VPNIntent(experiments.Fig4Goal(), "MPLS"), nil
	case "vlan":
		return experiments.BuildFig9, experiments.VPNIntent(experiments.Fig9Goal(), "VLAN tunnel"), nil
	}
	return nil, nm.Intent{}, fmt.Errorf("unknown scenario %q (want gre, mpls or vlan)", name)
}

func runIntent(cmd string, args []string) error {
	dryRun := false
	var names []string
	for _, a := range args {
		if a == "-dry-run" || a == "--dry-run" {
			dryRun = true
			continue
		}
		names = append(names, a)
	}
	if len(names) != 1 {
		usage()
		return fmt.Errorf("%s needs exactly one scenario", cmd)
	}
	build, intent, err := scenario(names[0])
	if err != nil {
		return err
	}
	tb, err := build()
	if err != nil {
		return err
	}
	defer tb.Close()

	plan, err := tb.NM.Plan(intent)
	if err != nil {
		return err
	}
	fmt.Print(plan.Render())
	if cmd == "plan" || (cmd == "apply" && dryRun) {
		fmt.Println("dry run: no commands sent")
		return nil
	}

	if err := tb.NM.Apply(plan); err != nil {
		return err
	}
	c := tb.NM.Counters()
	fmt.Printf("applied: %d messages sent, %d received\n", c.Sent(), c.Received())
	if err := tb.VerifyConnectivity(4242); err != nil {
		return fmt.Errorf("data-plane verification: %w", err)
	}
	fmt.Println("data plane verified: probes delivered both ways, isolation holds")

	second, err := tb.NM.Plan(intent)
	if err != nil {
		return err
	}
	if !second.Empty() {
		return fmt.Errorf("re-plan not empty after apply:\n%s", second.Render())
	}
	fmt.Printf("re-plan: no changes (%d components in place) — apply is idempotent\n", second.InPlace)

	if cmd != "destroy" {
		return nil
	}
	if dryRun {
		down, err := tb.NM.PlanDestroy(intent)
		if err != nil {
			return err
		}
		fmt.Print(down.Render())
		fmt.Println("dry run: teardown not executed")
		return nil
	}
	down, err := tb.NM.Destroy(intent)
	if err != nil {
		return err
	}
	fmt.Printf("destroyed: %d delete batches executed\n", len(down.Deletes))
	if err := tb.VerifyConnectivity(4343); err == nil {
		return fmt.Errorf("path still carries traffic after destroy")
	}
	fmt.Println("path gone: probes no longer delivered")
	again, err := tb.NM.Plan(intent)
	if err != nil {
		return err
	}
	fmt.Printf("re-plan after destroy: %d components to create\n", countItems(again.Creates))
	return nil
}

// runStore drives the intent-store demo: two customer VPNs crossing the
// same diamond of switches (shared edge and transit devices), managed
// through Submit / Withdraw / Reconcile.
func runStore(cmd string, args []string) error {
	dryRun := false
	var names []string
	for _, a := range args {
		if a == "-dry-run" || a == "--dry-run" {
			dryRun = true
			continue
		}
		names = append(names, a)
	}
	tb, pairs, err := experiments.BuildDiamondShared(2)
	if err != nil {
		return err
	}
	defer tb.Close()
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			return err
		}
	}

	if cmd == "submit" {
		if len(names) != 0 {
			usage()
			return fmt.Errorf("submit takes no arguments")
		}
		plan, err := tb.NM.PlanStore()
		if err != nil {
			return err
		}
		fmt.Print(plan.Render())
		fmt.Println("dry run: submitting only records desired state; run 'conman reconcile' to configure")
		return nil
	}

	if cmd == "reconcile" {
		if len(names) != 0 {
			usage()
			return fmt.Errorf("reconcile takes no arguments")
		}
		plan, err := tb.NM.PlanStore()
		if err != nil {
			return err
		}
		fmt.Print(plan.Render())
		if dryRun {
			fmt.Println("dry run: no commands sent")
			return nil
		}
		if err := tb.NM.ApplyStore(plan); err != nil {
			return err
		}
		c := tb.NM.Counters()
		fmt.Printf("reconciled: %d messages sent, %d received\n", c.Sent(), c.Received())
		for i, p := range pairs {
			if err := tb.VerifyPair(p, uint32(4242+100*i)); err != nil {
				return fmt.Errorf("data-plane verification (pair %d): %w", p.Index, err)
			}
		}
		fmt.Println("data plane verified: both customer pairs deliver over the shared core")
		again, err := tb.NM.Reconcile()
		if err != nil {
			return err
		}
		if !again.Empty() {
			return fmt.Errorf("re-reconcile not empty:\n%s", again.Render())
		}
		fmt.Printf("re-reconcile: no changes (%d components in place, %d shared) — reconcile is idempotent\n",
			again.InPlace, again.Shared)
		return nil
	}

	// withdraw
	if len(names) != 1 {
		usage()
		return fmt.Errorf("withdraw needs exactly one intent name (vpn-c1 or vpn-c2)")
	}
	known := false
	for _, in := range tb.NM.Registered() {
		if in.Name == names[0] {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("no intent %q registered (want vpn-c1 or vpn-c2)", names[0])
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		return err
	}
	fmt.Println("reconciled both intents over the shared core")
	if err := tb.NM.Withdraw(names[0]); err != nil {
		return err
	}
	plan, err := tb.NM.PlanStore()
	if err != nil {
		return err
	}
	fmt.Print(plan.Render())
	if dryRun {
		fmt.Println("dry run: withdrawal not executed")
		return nil
	}
	if err := tb.NM.ApplyStore(plan); err != nil {
		return err
	}
	fmt.Printf("withdrawn %q: %d delete batches executed, shared components kept\n", names[0], len(plan.Deletes))
	for _, p := range pairs {
		name := p.Intent("VLAN tunnel").Name
		if name == names[0] {
			continue
		}
		if err := tb.VerifyPair(p, 5353); err != nil {
			return fmt.Errorf("surviving intent %q broken by withdrawal: %w", name, err)
		}
		fmt.Printf("surviving intent %q still delivers\n", name)
	}
	return nil
}

// storeFailure maps a store-command error to its exit code and stderr
// lines. A typed ConflictError — two intents classifying the same
// traffic to different targets — gets a distinct exit code and an
// actionable line naming both intents, instead of disappearing into a
// generic failure.
func storeFailure(cmd string, err error) (code int, lines []string) {
	lines = []string{fmt.Sprintf("conman %s: %v", cmd, err)}
	var ce *nm.ConflictError
	if !errors.As(err, &ce) {
		return 1, lines
	}
	lines = append(lines,
		fmt.Sprintf("conflicting intents: %q and %q (switch rules collide at %s)", ce.IntentA, ce.IntentB, ce.Module),
		"resolution: withdraw one of them (conman withdraw <name>) or change its goal")
	return 3, lines
}

// defaultDaemonAddr is where `conman daemon` listens and `conman
// doctor` probes unless -addr overrides it.
const defaultDaemonAddr = "127.0.0.1:8347"

// runDaemon brings up the shared-core demo (two VLAN-tunnel VPN
// intents over the diamond) under the autonomous reconciliation
// daemon and serves its observability surface over HTTP until
// SIGINT/SIGTERM. The /chaos endpoints inject and repair wire faults
// so the healing loop can be exercised from the outside (the CI smoke
// job does exactly that).
func runDaemon(args []string) error {
	fs := flag.NewFlagSet("daemon", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "HTTP listen address for /status and /metrics")
	poll := fs.Duration("poll", 0, "periodic audit interval (0 disables polling; events alone drive reconciliation)")
	stateDir := fs.String("state-dir", "", "persist the intent store (snapshot + journal) in this directory and restore it on startup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tb, pairs, err := experiments.BuildDiamondShared(2)
	if err != nil {
		return err
	}
	defer tb.Close()
	if *stateDir != "" {
		lock, err := datastore.LockDir(*stateDir)
		if err != nil {
			return err
		}
		defer lock.Close()
		backend, err := datastore.NewFileBackend(*stateDir)
		if err != nil {
			return err
		}
		restored, err := tb.NM.Persist(backend)
		if err != nil {
			return err
		}
		fmt.Printf("conman daemon: restored %d intents from %s\n", restored, *stateDir)
	}
	for _, p := range pairs {
		err := tb.NM.Submit(p.Intent("VLAN tunnel"))
		var dup *nm.DuplicateIntentError
		if errors.As(err, &dup) {
			continue // already restored from the state directory
		}
		if err != nil {
			return err
		}
	}

	metrics := obs.NewMetrics()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	d, stop := tb.StartDaemon(nm.DaemonConfig{
		Poll:    *poll,
		Logger:  logger,
		Metrics: metrics,
	})
	defer stop()

	mux := obs.NewMux(func() any { return d.Status() }, metrics)
	mux.HandleFunc("/chaos/kill-wire", chaosWire(tb, false))
	mux.HandleFunc("/chaos/restore-wire", chaosWire(tb, true))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Printf("conman daemon: listening on http://%s (/status /metrics /chaos/kill-wire?wire=W)\n", ln.Addr())
	wires := tb.Net.Media()
	sort.Strings(wires)
	fmt.Printf("conman daemon: wires: %s\n", strings.Join(wires, " "))

	select {
	case <-ctx.Done():
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = srv.Shutdown(shutCtx)
		stop() // quiesce the reconciler before snapshotting
		if *stateDir != "" {
			if err := tb.NM.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "conman daemon: checkpoint on shutdown: %v\n", err)
			} else {
				fmt.Printf("conman daemon: state checkpointed to %s\n", *stateDir)
			}
		}
		fmt.Println("conman daemon: shut down")
		return nil
	case err := <-serveErr:
		return err
	}
}

// chaosWire builds the fault-injection handler: POST
// /chaos/kill-wire?wire=A-B1 cuts a wire, /chaos/restore-wire brings
// it back. The daemon is not told — it must notice via the carrier
// topology re-reports, exactly like a real failure.
func chaosWire(tb *experiments.Testbed, up bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("wire")
		if name == "" {
			http.Error(w, "missing ?wire=<name> (see startup log for wire names)", http.StatusBadRequest)
			return
		}
		if _, ok := tb.Net.Medium(name); !ok {
			http.Error(w, fmt.Sprintf("unknown wire %q", name), http.StatusNotFound)
			return
		}
		if err := tb.Net.SetMediumUp(name, up); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"wire\":%q,\"up\":%v}\n", name, up)
	}
}

// chaosWiring builds the fabric for `conman chaos`. n is the family's
// natural size knob (fattree: pod arity, ring/waxman: device count,
// torus: side length); 0 picks a small default.
func chaosWiring(family string, n int, seed int64) (*topo.Wiring, error) {
	switch family {
	case "fattree":
		if n == 0 {
			n = 4
		}
		return topo.FatTree(n)
	case "ring":
		if n == 0 {
			n = 16
		}
		return topo.Ring(n)
	case "torus":
		if n == 0 {
			n = 4
		}
		return topo.Torus(n, n)
	case "waxman":
		if n == 0 {
			n = 32
		}
		return topo.Waxman(n, 0.7, 0.25, seed)
	default:
		return nil, fmt.Errorf("unknown -topo %q (fattree, ring, torus, waxman)", family)
	}
}

// runChaosCmd is the chaos harness as an operator command: one seeded
// multi-failure episode against a daemon-managed generated fabric,
// exit 0 only if every intent re-converged autonomously and delivers.
func runChaosCmd(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	family := fs.String("topo", "fattree", "fabric family: fattree, ring, torus or waxman")
	size := fs.Int("n", 0, "fabric size (fattree: pod arity, ring/waxman: devices, torus: side; 0 = family default)")
	pairsN := fs.Int("pairs", 2, "customer pairs (one VLAN intent each) riding the fabric")
	seed := fs.Int64("seed", 1, "seed for the fault picker (and the waxman graph)")
	wires := fs.Int("wires", 2, "wires to cut concurrently")
	devices := fs.Int("devices", 0, "devices to kill concurrently")
	pipes := fs.Int("pipes", 0, "applied tunnel pipes to delete concurrently")
	timeout := fs.Duration("timeout", 30*time.Second, "re-convergence deadline")
	addr := fs.String("addr", "", "serve /status and /metrics here and stay up after the episode (for doctor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := chaosWiring(*family, *size, *seed)
	if err != nil {
		return err
	}
	tb, pairs, err := experiments.BuildTopoVLAN(w, *pairsN)
	if err != nil {
		return err
	}
	defer tb.Close()
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			return err
		}
	}
	metrics := obs.NewMetrics()
	d, stop := tb.StartDaemon(nm.DaemonConfig{Metrics: metrics})
	defer stop()

	var srv *http.Server
	if *addr != "" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		srv = &http.Server{Handler: obs.NewMux(func() any { return d.Status() }, metrics)}
		go func() { _ = srv.Serve(ln) }()
		fmt.Printf("conman chaos: listening on http://%s (/status /metrics)\n", ln.Addr())
	}

	fmt.Printf("conman chaos: %s %s — %d devices, %d wires, %d intents\n",
		w.Family, w.Param, len(w.Devices), len(w.Wires), len(pairs))
	if err := d.WaitConverged(0, *timeout); err != nil {
		return fmt.Errorf("initial convergence: %w", err)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(90000+100*i)); err != nil {
			return fmt.Errorf("before chaos: %w", err)
		}
	}
	fmt.Printf("conman chaos: converged, delivery verified on %d pairs\n", len(pairs))

	protect, err := w.CrossCorePairs(*pairsN)
	if err != nil {
		return err
	}
	rep, err := tb.RunChaos(d, w, protect, experiments.ChaosSpec{
		Seed: *seed, Wires: *wires, Devices: *devices, Pipes: *pipes, Timeout: *timeout,
	})
	if rep != nil {
		for _, name := range rep.Wires {
			fmt.Printf("conman chaos: cut wire %s\n", name)
		}
		for _, dev := range rep.Devices {
			fmt.Printf("conman chaos: killed device %s\n", dev)
		}
		for _, req := range rep.Pipes {
			fmt.Printf("conman chaos: deleted pipe %s on %s\n", req.ID, req.Module)
		}
	}
	if err != nil {
		return err
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(91000+100*i)); err != nil {
			return fmt.Errorf("after heal: %w", err)
		}
	}
	fmt.Printf("conman chaos: healed %d faults (%d candidates guarded), delivery re-verified on %d pairs\n",
		rep.Faults(), rep.Guarded, len(pairs))

	if srv == nil {
		return nil
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Println("conman chaos: serving until interrupted")
	<-ctx.Done()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx)
	return nil
}

// runDoctor snapshots a running daemon's /status and renders a
// human-readable health report; the exit code is the check result (0
// healthy, 1 not, 2 unreachable daemon / bad flags).
func runDoctor(args []string) int {
	fs := flag.NewFlagSet("doctor", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "daemon address to probe")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + *addr + "/status")
	if err != nil {
		fmt.Fprintf(os.Stderr, "conman doctor: %v\n", err)
		return 2
	}
	defer resp.Body.Close()
	var st nm.DaemonStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fmt.Fprintf(os.Stderr, "conman doctor: decoding /status: %v\n", err)
		return 2
	}

	dash := func(s string) string {
		if s == "" {
			return "-"
		}
		return s
	}
	fmt.Printf("daemon at %s\n", *addr)
	fmt.Printf("  running:     %v\n", st.Running)
	fmt.Printf("  converged:   %v (generation %d)\n", st.Converged, st.ConvergeGen)
	fmt.Printf("  dirty:       %s\n", dash(strings.Join(st.Dirty, ", ")))
	fmt.Printf("  last error:  %s\n", dash(st.LastError))
	unreach := make([]string, len(st.Unreachable))
	for i, dev := range st.Unreachable {
		unreach[i] = string(dev)
	}
	fmt.Printf("  unreachable: %s\n", dash(strings.Join(unreach, ", ")))
	for _, h := range st.Intents {
		devs := make([]string, len(h.Devices))
		for i, dev := range h.Devices {
			devs[i] = string(dev)
		}
		fmt.Printf("  intent %-8s %d exclusive / %d shared components on %s\n",
			h.Name+":", h.Exclusive, h.Shared, strings.Join(devs, ","))
		if h.Path != "" {
			fmt.Printf("    path: %s\n", h.Path)
		}
	}
	fmt.Printf("  reconciles:  %d runs, %d errors\n",
		counterOf(st.Metrics, "conman_reconcile_runs_total"),
		counterOf(st.Metrics, "conman_reconcile_errors_total"))
	fmt.Printf("  events:      %d notify / %d trigger / %d topology (push), %d poll (pull), %d dropped\n",
		counterOf(st.Metrics, "conman_events_notify_total"),
		counterOf(st.Metrics, "conman_events_trigger_total"),
		counterOf(st.Metrics, "conman_events_topology_total"),
		counterOf(st.Metrics, "conman_events_poll_total"),
		counterOf(st.Metrics, "conman_events_dropped_total"))
	hits := counterOf(st.Metrics, "conman_observe_cache_hits_total")
	misses := counterOf(st.Metrics, "conman_observe_cache_misses_total")
	rate := "-"
	if hits+misses > 0 {
		rate = fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
	}
	fmt.Printf("  obs cache:   %d hits / %d misses (%s hit rate), %d observes, %d recompiles\n",
		hits, misses, rate,
		counterOf(st.Metrics, "conman_observes_total"),
		counterOf(st.Metrics, "conman_store_recompiles_total"))
	fmt.Printf("  journal:     %d entries, %d snapshots\n",
		counterOf(st.Metrics, "conman_journal_entries_total"),
		counterOf(st.Metrics, "conman_snapshot_writes_total"))

	if !st.Healthy() {
		fmt.Println("UNHEALTHY")
		return 1
	}
	fmt.Println("healthy")
	return 0
}

// runStoreAdmin operates offline on a daemon's -state-dir: `log` prints
// the journal, `show` replays the registered intents as of a sequence
// number, `rollback` appends a rollback record rewinding the intent set
// (history is kept — the rollback is itself a journal entry the next
// daemon start replays). All three take the state dir's exclusive lock,
// so they fail fast while a daemon is live instead of racing its
// journal writer.
func runStoreAdmin(args []string) error {
	if len(args) < 1 {
		usage()
		return fmt.Errorf("store needs a subcommand (log, show or rollback)")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ContinueOnError)
	dir := fs.String("state-dir", "", "daemon state directory (snapshot + journal)")
	to := fs.Uint64("to", 0, "journal sequence number (show: replay up to it; rollback: rewind to it)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store %s needs -state-dir", sub)
	}
	// Exclude a live daemon (and other admin invocations): a second
	// journal writer would hand out colliding sequence numbers, and a
	// running daemon would never apply an offline rollback anyway.
	lock, err := datastore.LockDir(*dir)
	if err != nil {
		return err
	}
	defer lock.Close()
	backend, err := datastore.NewFileBackend(*dir)
	if err != nil {
		return err
	}
	log, st, err := datastore.Open(backend)
	if err != nil {
		return err
	}
	defer log.Close()

	switch sub {
	case "log":
		all, err := backend.Entries()
		if err != nil {
			return err
		}
		fmt.Printf("state %s: %d journal entries, snapshot at seq %d, last seq %d\n",
			*dir, len(all), st.SnapshotSeq, st.LastSeq)
		for _, e := range all {
			line := fmt.Sprintf("  seq %4d  %s  %-11s", e.Seq, time.Unix(e.TimeUnix, 0).Format(time.RFC3339), e.Op)
			if e.Name != "" {
				line += " " + e.Name
			}
			switch e.Op {
			case datastore.OpApplyBegin:
				var devs []string
				if json.Unmarshal(e.Data, &devs) == nil {
					line += " devices=" + strings.Join(devs, ",")
				}
			case datastore.OpRollback:
				line += fmt.Sprintf(" to=%d", e.To)
			}
			fmt.Println(line)
			if e.Seq == st.SnapshotSeq {
				fmt.Println("  ---- snapshot ----")
			}
		}
		return nil

	case "show":
		var recs []datastore.IntentRecord
		if *to != 0 {
			// Historic view: replay the full retained journal from empty.
			all, err := backend.Entries()
			if err != nil {
				return err
			}
			recs, err = datastore.ReplayIntents(nil, all, *to)
			if err != nil {
				return err
			}
			fmt.Printf("intents as of seq %d:\n", *to)
		} else {
			base, err := datastore.SnapshotIntents(st.Snapshot)
			if err != nil {
				return err
			}
			recs, err = datastore.ReplayIntents(base, st.Entries, 0)
			if err != nil {
				return err
			}
			fmt.Printf("intents as of seq %d:\n", st.LastSeq)
		}
		if len(recs) == 0 {
			fmt.Println("  (none)")
		}
		for _, r := range recs {
			fmt.Printf("  %-12s %s\n", r.Name, compactJSON(r.Data))
		}
		return nil

	case "rollback":
		if *to == 0 {
			return fmt.Errorf("store rollback needs -to SEQ (see 'store log')")
		}
		if *to >= st.LastSeq {
			return fmt.Errorf("-to %d is not in the past (last seq %d)", *to, st.LastSeq)
		}
		all, err := backend.Entries()
		if err != nil {
			return err
		}
		recs, err := datastore.ReplayIntents(nil, all, *to)
		if err != nil {
			return err
		}
		e, err := log.Append(datastore.OpRollback, "", recs, *to)
		if err != nil {
			return err
		}
		fmt.Printf("rolled back to seq %d (rollback recorded as seq %d); intent set now:\n", *to, e.Seq)
		if len(recs) == 0 {
			fmt.Println("  (none)")
		}
		for _, r := range recs {
			fmt.Printf("  %s\n", r.Name)
		}
		fmt.Println("restart the daemon (same -state-dir) to reconcile the network to this set")
		return nil
	}
	usage()
	return fmt.Errorf("unknown store subcommand %q (want log, show or rollback)", sub)
}

// compactJSON renders a raw JSON payload on one line, truncated for
// listing.
func compactJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	s := buf.String()
	if len(s) > 120 {
		s = s[:117] + "..."
	}
	return s
}

// counterOf digs one counter out of a decoded /status metrics map;
// JSON numbers arrive as float64.
func counterOf(metrics map[string]any, name string) uint64 {
	if v, ok := metrics[name].(float64); ok {
		return uint64(v)
	}
	return 0
}

func countItems(scripts []nm.DeviceScript) int {
	n := 0
	for _, ds := range scripts {
		n += len(ds.Items)
	}
	return n
}

// benchResult is one JSON record of the scale benchmark.
type benchResult struct {
	Benchmark string  `json:"benchmark"`
	Scenario  string  `json:"scenario"`
	N         int     `json:"n"`
	Mode      string  `json:"mode"`
	Seconds   float64 `json:"seconds"`
	Sent      int     `json:"sent,omitempty"`
	Received  int     `json:"received,omitempty"`
	// Expanded is the number of search states the path finder explored
	// (FindPath benchmark rows only).
	Expanded int `json:"expanded,omitempty"`
}

// runBench measures intent apply on linear chains in both execution
// modes over a latency-emulating channel, and writes the results as a
// JSON array (CI uploads it as BENCH_scale.json to track the perf
// trajectory across PRs).
func runBench(args []string) error {
	out := ""
	for i := 0; i < len(args); i++ {
		if args[i] == "-out" || args[i] == "--out" {
			if i+1 >= len(args) {
				return fmt.Errorf("-out needs a file name")
			}
			out = args[i+1]
			i++
		}
	}
	const latency = 200 * time.Microsecond
	var results []benchResult
	// The plain GRE rows track the executor's scaling to n=128; the
	// IGP-enabled rows additionally track the control modules' flooding
	// cost. The row list is shared with BenchmarkLinearConfigure so the
	// CI gate's coverage and the Go benchmark never diverge.
	for _, row := range experiments.BenchApplyRows() {
		sc := row.Scenario
		for _, n := range row.Ns {
			for _, mode := range []string{"sequential", "concurrent"} {
				best := time.Duration(0)
				var counters nm.Counters
				for rep := 0; rep < 2; rep++ {
					tb, err := sc.Build(n)
					if err != nil {
						return err
					}
					tb.NM.Sequential = mode == "sequential"
					tb.NM.Workers = 64
					plan, err := sc.PlanLinear(tb, n)
					if err != nil {
						return err
					}
					tb.NM.ResetCounters()
					tb.Hub.SetLatency(latency)
					start := time.Now()
					if err := tb.NM.Apply(plan); err != nil {
						return err
					}
					el := time.Since(start)
					if best == 0 || el < best {
						best = el
					}
					counters = tb.NM.Counters()
				}
				results = append(results, benchResult{
					Benchmark: "LinearApply", Scenario: sc.Name, N: n, Mode: mode,
					Seconds: best.Seconds(), Sent: counters.Sent(), Received: counters.Received(),
				})
				fmt.Fprintf(os.Stderr, "LinearApply/%s n=%d %s: %v (%d sent / %d received)\n",
					sc.Name, n, mode, best, counters.Sent(), counters.Received())
			}
		}
	}
	// Path-finder cost: legacy enumerate-then-filter vs best-first on
	// the L2 chains whose variant space is exponential, tracked across
	// PRs via the expanded-states metric.
	vlan, err := experiments.LinearScenarioByName("VLAN")
	if err != nil {
		return err
	}
	for _, n := range []int{16, 64, 128} {
		g, base, err := vlan.FindPathSpec(n)
		if err != nil {
			return err
		}
		for _, mode := range []string{"exhaustive", "best-first"} {
			spec := base
			spec.Exhaustive = mode == "exhaustive"
			best := time.Duration(0)
			var stats nm.PruneStats
			for rep := 0; rep < 2; rep++ {
				start := time.Now()
				p, s, err := g.FindBest(spec)
				if err != nil {
					return err
				}
				if p == nil {
					return fmt.Errorf("bench: no %q path at n=%d (%s)", vlan.PathDesc, n, mode)
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
				stats = s
			}
			results = append(results, benchResult{
				Benchmark: "FindPath", Scenario: vlan.Name, N: n, Mode: mode,
				Seconds: best.Seconds(), Expanded: stats.Expanded,
			})
			fmt.Fprintf(os.Stderr, "FindPath/%s n=%d %s: %v (%d states expanded)\n",
				vlan.Name, n, mode, best, stats.Expanded)
		}
	}
	// Store reconcile latency: one dirty intent among k resident ones.
	// The k=1 row is the floor (compile + two edge batches); the k=10000
	// row must stay within 5x of it or the store has regressed to
	// O(store) passes — the incremental engine's acceptance budget,
	// enforced here and via the CI baseline.
	{
		const storeIters = 32
		secs := make(map[int]float64)
		for _, k := range []int{1, 10000} {
			mean, expanded, err := benchStoreReconcile(k, storeIters, latency)
			if err != nil {
				return err
			}
			secs[k] = mean
			results = append(results, benchResult{
				Benchmark: "StoreReconcile", Scenario: "diamond-lite", N: k, Mode: "1-dirty",
				Seconds: mean, Expanded: expanded,
			})
			fmt.Fprintf(os.Stderr, "StoreReconcile/diamond-lite n=%d 1-dirty: %v per reconcile (%d observes+recompiles over %d iterations)\n",
				k, time.Duration(mean*float64(time.Second)), expanded, storeIters)
		}
		if ratio := secs[10000] / secs[1]; ratio > 5 {
			return fmt.Errorf("StoreReconcile 1-dirty latency at k=10000 is %.1fx the k=1 floor (budget 5x) — reconcile is no longer O(changed)", ratio)
		}
	}
	// Daemon convergence: wall clock from an injected wire cut to a
	// re-converged store under the autonomous daemon — carrier loss,
	// topology re-reports, debounce, reroute, verify-empty plan. This is
	// the push-path healing latency the §II-E trigger plumbing exists to
	// bound, gated across PRs like the other rows.
	{
		best, err := benchDaemonConverge(latency, 2)
		if err != nil {
			return err
		}
		results = append(results, benchResult{
			Benchmark: "DaemonConverge", Scenario: "VLAN-shared", N: 2, Mode: "kill-wire",
			Seconds: best.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "DaemonConverge/VLAN-shared n=2 kill-wire: %v\n", best)
	}
	// Generated-topology rows (ROADMAP item 4): the fabric families of
	// the chaos harness, measured where the line topologies cannot see —
	// IGP cold-start flooding on diverse graphs, unguided path search on
	// a random fabric, and intent compilation at generator scale.
	if err := benchTopoRows(&results, latency); err != nil {
		return err
	}
	// Transport rows (ROADMAP item 5): the UDP management plane's cost
	// clean vs under seeded 5% loss, and the datagram economics of
	// batching an LSA-flood burst — with an in-bench ≥4x floor on the
	// batching win, mirroring the StoreReconcile ratio gate above.
	if err := benchTransportRows(&results); err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0644)
}

// benchTopoRows appends the generated-topology benchmark rows:
//
//   - IGPFlood: applying the first routed intent on a BuildTopoGREIGP
//     fabric cold-starts IGP adjacencies on every router; each LSA
//     batch is relayed through the NM, so the counters' relay figures
//     are the flooding message count. Sequential mode keeps them
//     deterministic (Expanded = relays out, gated exactly; a ring
//     floods O(n) LSAs over O(n) adjacencies, a Clos core refloods
//     across its much denser neighbour sets).
//   - FindPath/waxman: best-first search with no Prefer hint on a
//     seeded random graph — the metric-driven selection of §III-C.1
//     over an irregular variant space, tracked by states expanded.
//   - TopoPlan: intent compilation (no apply) on generator-scale
//     fabrics, the wall-clock row for the n∈{512,1024,4096} planning
//     path the chaos suite proves correct.
func benchTopoRows(results *[]benchResult, latency time.Duration) error {
	for _, tc := range []struct {
		scen  string
		build func() (*topo.Wiring, error)
	}{
		{"ring-16", func() (*topo.Wiring, error) { return topo.Ring(16) }},
		{"fattree-4", func() (*topo.Wiring, error) { return topo.FatTree(4) }},
	} {
		w, err := tc.build()
		if err != nil {
			return err
		}
		tb, pairs, err := experiments.BuildTopoGREIGP(w, 1)
		if err != nil {
			return err
		}
		tb.NM.Sequential = true
		intent := nm.Intent{Name: "vpn-c1", Goal: pairs[0].Goal, Prefer: "GRE-IP tunnel"}
		plan, err := tb.NM.Plan(intent)
		if err != nil {
			tb.Close()
			return err
		}
		tb.NM.ResetCounters()
		tb.Hub.SetLatency(latency)
		start := time.Now()
		if err := tb.NM.Apply(plan); err != nil {
			tb.Close()
			return err
		}
		el := time.Since(start)
		c := tb.NM.Counters()
		*results = append(*results, benchResult{
			Benchmark: "IGPFlood", Scenario: tc.scen, N: len(w.Devices), Mode: "sequential",
			Seconds: el.Seconds(), Sent: c.Sent(), Received: c.Received(), Expanded: c.RelayOut,
		})
		fmt.Fprintf(os.Stderr, "IGPFlood/%s n=%d sequential: %v (%d LSA relays, %d sent / %d received)\n",
			tc.scen, len(w.Devices), el, c.RelayOut, c.Sent(), c.Received())
		tb.Close()
	}
	{
		w, err := topo.Waxman(48, 0.7, 0.25, 1)
		if err != nil {
			return err
		}
		tb, intents, err := experiments.BuildTopoVLANLite(w, 1)
		if err != nil {
			return err
		}
		goal := intents[0].Goal
		g, err := nm.BuildGraph(tb.NM)
		if err != nil {
			tb.Close()
			return err
		}
		spec := nm.FindSpec{
			From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
			FromPipe: goal.FromPipe, ToPipe: goal.ToPipe,
		}
		best := time.Duration(0)
		var stats nm.PruneStats
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			p, s, err := g.FindBest(spec)
			if err != nil {
				tb.Close()
				return err
			}
			if p == nil {
				tb.Close()
				return fmt.Errorf("bench: no unguided path on waxman-48")
			}
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
			stats = s
		}
		*results = append(*results, benchResult{
			Benchmark: "FindPath", Scenario: "waxman-48", N: 48, Mode: "no-prefer",
			Seconds: best.Seconds(), Expanded: stats.Expanded,
		})
		fmt.Fprintf(os.Stderr, "FindPath/waxman-48 n=48 no-prefer: %v (%d states expanded)\n",
			best, stats.Expanded)
		tb.Close()
	}
	for _, tc := range []struct {
		scen  string
		build func() (*topo.Wiring, error)
	}{
		{"ring", func() (*topo.Wiring, error) { return topo.Ring(512) }},
		{"torus", func() (*topo.Wiring, error) { return topo.Torus(32, 32) }},
		{"torus", func() (*topo.Wiring, error) { return topo.Torus(64, 64) }},
	} {
		w, err := tc.build()
		if err != nil {
			return err
		}
		tb, intents, err := experiments.BuildTopoVLANLite(w, 1)
		if err != nil {
			return err
		}
		start := time.Now()
		plan, err := tb.NM.Plan(intents[0])
		if err != nil {
			tb.Close()
			return err
		}
		el := time.Since(start)
		if plan.Empty() {
			tb.Close()
			return fmt.Errorf("bench: empty plan on %s n=%d", tc.scen, len(w.Devices))
		}
		*results = append(*results, benchResult{
			Benchmark: "TopoPlan", Scenario: tc.scen, N: len(w.Devices), Mode: "plan",
			Seconds: el.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "TopoPlan/%s n=%d plan: %v\n", tc.scen, len(w.Devices), el)
		tb.Close()
	}
	return nil
}

// benchStoreReconcile builds the diamond-lite topology with k resident
// intents, converges the store once, then measures iters rounds of
// "submit one new intent, reconcile" under the latency-emulating
// channel. It returns the mean per-round wall clock and the total
// observes+recompiles the incremental engine spent (ideally exactly
// iters recompiles and zero observes — the cache write-through keeps
// every round RPC-free beyond its two edge batches).
func benchStoreReconcile(k, iters int, latency time.Duration) (float64, int, error) {
	tb, err := experiments.BuildDiamondLite(k + iters)
	if err != nil {
		return 0, 0, err
	}
	defer tb.Close()
	for j := 1; j <= k; j++ {
		if err := tb.NM.Submit(experiments.LiteIntent(j)); err != nil {
			return 0, 0, err
		}
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		return 0, 0, err
	}
	// Settle any pending-bind fallback so measurement starts converged.
	if _, err := tb.NM.Reconcile(); err != nil {
		return 0, 0, err
	}
	tb.Hub.SetLatency(latency)
	expanded := 0
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := tb.NM.Submit(experiments.LiteIntent(k + 1 + i)); err != nil {
			return 0, 0, err
		}
		plan, err := tb.NM.Reconcile()
		if err != nil {
			return 0, 0, err
		}
		expanded += plan.Stats.Observed + plan.Stats.Recompiled
	}
	return time.Since(start).Seconds() / float64(iters), expanded, nil
}

// benchDaemonConverge measures one kill-wire heal under the daemon on
// the shared diamond and returns the best of reps runs: cut the active
// arm after initial convergence, clock until the daemon reports a new
// converged generation with nothing dirty.
func benchDaemonConverge(latency time.Duration, reps int) (time.Duration, error) {
	const wait = 30 * time.Second
	best := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		el, err := func() (time.Duration, error) {
			tb, pairs, err := experiments.BuildDiamondShared(2)
			if err != nil {
				return 0, err
			}
			defer tb.Close()
			for _, p := range pairs {
				if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
					return 0, err
				}
			}
			d, stop := tb.StartDaemon(nm.DaemonConfig{})
			defer stop()
			if err := d.WaitConverged(0, wait); err != nil {
				return 0, err
			}
			tb.Hub.SetLatency(latency)
			gen := d.ConvergeGen()
			start := time.Now()
			if err := tb.Net.SetMediumUp("A-B1", false); err != nil {
				return 0, err
			}
			if err := d.WaitConverged(gen, wait); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}()
		if err != nil {
			return 0, err
		}
		if best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

func header(s string) {
	fmt.Printf("\n%s\n%s\n", s, strings.Repeat("=", len(s)))
}

func run(cmd string) error {
	switch cmd {
	case "table3":
		header("Table III — abstraction exposed by the GRE module")
		_, rendered, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Print(rendered)

	case "table4":
		header("Table IV — connectivity and switching of device A's modules")
		out, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(out)

	case "table5":
		header("Table V — commands and state variables: today (T) vs CONMan (C)")
		_, rendered, err := experiments.Table5()
		if err != nil {
			return err
		}
		fmt.Print(rendered)

	case "table6":
		header("Table VI — NM messages over the management channel")
		_, rendered, err := experiments.Table6([]int{3, 4, 5, 6, 7, 8})
		if err != nil {
			return err
		}
		fmt.Print(rendered)
		fmt.Println("formulas: GRE 3n+2 / 2n+2; MPLS and VLAN 3n-2 / 2n-1")

	case "fig3":
		header("Fig 3 — GRE-IP tunnel establishment message sequence")
		tb, err := experiments.BuildFig4()
		if err != nil {
			return err
		}
		// Sequential mode keeps the trace in chronological order — Fig 3
		// is a time-ordered sequence diagram.
		tb.NM.Sequential = true
		tb.NM.EnableMessageLog()
		goal := experiments.Fig4Goal()
		if _, _, err := experiments.ConfigureVPN(tb, goal, "GRE-IP tunnel"); err != nil {
			return err
		}
		for _, line := range tb.NM.MessageLog() {
			fmt.Println("  " + line)
		}

	case "fig5":
		header("Fig 5 — potential connectivity sub-graph for device A")
		edges, dot, err := experiments.Fig5()
		if err != nil {
			return err
		}
		for _, e := range edges {
			fmt.Println("  " + e)
		}
		fmt.Println("\nGraphviz:")
		fmt.Print(dot)

	case "paths":
		header("§III-C.1 — paths between <ETH,A,a> and <ETH,C,f>")
		res, err := experiments.Paths9()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())

	case "fig7":
		return comparison(experiments.Fig7, "Fig 7 — VPN via GRE-IP tunnel")
	case "fig8":
		return comparison(experiments.Fig8, "Fig 8 — VPN via MPLS LSP")
	case "fig9":
		return comparison(experiments.Fig9Run, "Fig 9 — VPN via VLAN tunneling")

	default:
		usage()
		return fmt.Errorf("unknown artifact %q", cmd)
	}
	return nil
}

func comparison(f func() (*experiments.ConfigComparison, error), title string) error {
	header(title)
	cmp, err := f()
	if err != nil {
		return err
	}
	fmt.Print(cmp.Render())
	return nil
}
