// Command conman regenerates the tables and figures of the CONMan paper's
// evaluation (§III) from the live reproduction.
//
// Usage:
//
//	conman table3|table4|table5|table6|fig3|fig5|fig7|fig8|fig9|paths|all
package main

import (
	"fmt"
	"os"
	"strings"

	"conman/internal/experiments"
	"conman/internal/nm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmds := os.Args[1:]
	if len(cmds) == 1 && cmds[0] == "all" {
		cmds = []string{"table3", "table4", "paths", "fig5", "fig7", "fig8", "fig9", "table5", "table6", "fig3"}
	}
	for _, cmd := range cmds {
		if err := run(cmd); err != nil {
			fmt.Fprintf(os.Stderr, "conman %s: %v\n", cmd, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: conman <artifact>...
artifacts:
  table3   GRE module abstraction (Table III)
  table4   device A module inventory (Table IV)
  table5   generic/specific commands & state variables (Table V)
  table6   NM message counts vs path length (Table VI)
  fig3     GRE establishment message sequence (Fig 3)
  fig5     potential-connectivity sub-graph of device A (Fig 5)
  fig7     GRE VPN: today vs CONMan (Fig 7)
  fig8     MPLS VPN: today vs CONMan (Fig 8)
  fig9     VLAN tunnel: today vs CONMan (Fig 9)
  paths    path enumeration between <ETH,A,a> and <ETH,C,f> (§III-C.1)
  all      everything above`)
}

func header(s string) {
	fmt.Printf("\n%s\n%s\n", s, strings.Repeat("=", len(s)))
}

func run(cmd string) error {
	switch cmd {
	case "table3":
		header("Table III — abstraction exposed by the GRE module")
		_, rendered, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Print(rendered)

	case "table4":
		header("Table IV — connectivity and switching of device A's modules")
		out, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(out)

	case "table5":
		header("Table V — commands and state variables: today (T) vs CONMan (C)")
		_, rendered, err := experiments.Table5()
		if err != nil {
			return err
		}
		fmt.Print(rendered)

	case "table6":
		header("Table VI — NM messages over the management channel")
		_, rendered, err := experiments.Table6([]int{3, 4, 5, 6, 7, 8})
		if err != nil {
			return err
		}
		fmt.Print(rendered)
		fmt.Println("formulas: GRE 3n+2 / 2n+2; MPLS and VLAN 3n-2 / 2n-1")

	case "fig3":
		header("Fig 3 — GRE-IP tunnel establishment message sequence")
		tb, err := experiments.BuildFig4()
		if err != nil {
			return err
		}
		tb.NM.EnableMessageLog()
		goal := experiments.Fig4Goal()
		if _, _, err := experiments.ConfigureVPN(tb, goal, "GRE-IP tunnel"); err != nil {
			return err
		}
		for _, line := range tb.NM.MessageLog() {
			fmt.Println("  " + line)
		}

	case "fig5":
		header("Fig 5 — potential connectivity sub-graph for device A")
		edges, dot, err := experiments.Fig5()
		if err != nil {
			return err
		}
		for _, e := range edges {
			fmt.Println("  " + e)
		}
		fmt.Println("\nGraphviz:")
		fmt.Print(dot)

	case "paths":
		header("§III-C.1 — paths between <ETH,A,a> and <ETH,C,f>")
		res, err := experiments.Paths9()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())

	case "fig7":
		return comparison(experiments.Fig7, "Fig 7 — VPN via GRE-IP tunnel")
	case "fig8":
		return comparison(experiments.Fig8, "Fig 8 — VPN via MPLS LSP")
	case "fig9":
		return comparison(experiments.Fig9Run, "Fig 9 — VPN via VLAN tunneling")

	default:
		usage()
		return fmt.Errorf("unknown artifact %q", cmd)
	}
	return nil
}

func comparison(f func() (*experiments.ConfigComparison, error), title string) error {
	header(title)
	cmp, err := f()
	if err != nil {
		return err
	}
	fmt.Print(cmp.Render())
	_ = nm.Counters{}
	return nil
}
