package main

import (
	"fmt"
	"strings"
	"testing"

	"conman/internal/core"
	"conman/internal/nm"
)

// TestStoreFailureConflict pins the CLI contract for intent conflicts:
// a (possibly wrapped) ConflictError from reconcile must exit with a
// distinct non-zero code and name both colliding intents on stderr —
// not vanish into the generic failure path.
func TestStoreFailureConflict(t *testing.T) {
	ce := &nm.ConflictError{
		Device:  "A",
		Module:  core.Ref(core.NameIPv4, "A", "g"),
		IntentA: "vpn-c1", IntentB: "vpn-c2",
	}
	code, lines := storeFailure("reconcile", fmt.Errorf("store apply: %w", ce))
	if code != 3 {
		t.Errorf("conflict exit code = %d, want 3", code)
	}
	out := strings.Join(lines, "\n")
	for _, want := range []string{`"vpn-c1"`, `"vpn-c2"`, "conman reconcile", "withdraw"} {
		if !strings.Contains(out, want) {
			t.Errorf("conflict report missing %q:\n%s", want, out)
		}
	}
}

// TestStoreFailureGeneric: any other error keeps the plain exit-1 path.
func TestStoreFailureGeneric(t *testing.T) {
	code, lines := storeFailure("withdraw", fmt.Errorf("no intent %q registered", "x"))
	if code != 1 {
		t.Errorf("generic exit code = %d, want 1", code)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "conman withdraw") {
		t.Errorf("generic report = %q", lines)
	}
}
