package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"conman/internal/channel"
	"conman/internal/experiments"
	"conman/internal/msg"
	"conman/internal/obs"
)

// runTransport is the CI transport-smoke tier's entrypoint: configure a
// linear GRE+IGP chain over real UDP sockets with seeded loss, reorder
// and jitter, verify the data plane end-to-end, and (with -addr) keep
// serving /status and /metrics so the harness can assert the transport's
// retry and batching counters are nonzero.
func runTransport(args []string) error {
	fs := flag.NewFlagSet("transport", flag.ContinueOnError)
	n := fs.Int("n", 128, "routers in the linear chain")
	loss := fs.Float64("loss", 0.05, "per-datagram loss probability")
	reorder := fs.Float64("reorder", 0.02, "per-datagram reorder probability")
	dup := fs.Float64("dup", 0, "per-datagram duplication probability")
	jitter := fs.Duration("jitter", time.Millisecond, "max per-datagram latency jitter")
	seed := fs.Int64("seed", 1, "fault-injection seed")
	flush := fs.Duration("flush", time.Millisecond, "batch flush age (0 sends immediately)")
	addr := fs.String("addr", "", "serve /status and /metrics on this address after converging (empty: exit)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	faults := channel.FaultConfig{
		Seed: *seed, Loss: *loss, Reorder: *reorder, Dup: *dup, Jitter: *jitter,
	}
	fn := channel.NewFaultyNetwork(channel.Config{FlushAge: *flush}, faults)
	sc := experiments.GREIGPScenario()
	tb, err := sc.BuildOver(*n, func(name string) (channel.Endpoint, error) {
		return fn.Endpoint(name)
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	tb.NM.RetryInterval = 100 * time.Millisecond
	tb.NM.CallTimeout = 30 * time.Second

	start := time.Now()
	if _, err := sc.ConfigureLinear(tb, *n); err != nil {
		return err
	}
	// UDP relays settle asynchronously: wait for the NM counters to
	// quiesce, then verify delivery (retrying while late floods land).
	settleCounters(tb, 20*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		err = tb.VerifyConnectivity(uint32(96000 + time.Now().UnixNano()%1000))
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("transport: data plane not converged: %w", err)
	}
	elapsed := time.Since(start)

	s := fn.Stats()
	fmt.Printf("transport: converged n=%d loss=%.0f%% reorder=%.0f%% jitter=%v in %v\n",
		*n, *loss*100, *reorder*100, *jitter, elapsed.Round(time.Millisecond))
	fmt.Printf("transport: %d datagrams sent (%d batched, %d retransmits, %d ack-only), %d dup frames dropped, %d envelopes delivered, %d NM call retries\n",
		s.DatagramsSent, s.BatchedDatagrams, s.Retransmits, s.AckOnly, s.DupFrames, s.EnvelopesDelivered, tb.NM.CallRetries())

	if *addr == "" {
		return nil
	}
	metrics := obs.NewMetrics()
	syncTransportMetrics(metrics, fn, tb)
	go func() {
		for range time.Tick(500 * time.Millisecond) {
			syncTransportMetrics(metrics, fn, tb)
		}
	}()
	mux := obs.NewMux(func() any {
		return map[string]any{
			"transport":       fn.Stats(),
			"nm_call_retries": tb.NM.CallRetries(),
			"n":               *n,
			"converge_secs":   elapsed.Seconds(),
		}
	}, metrics)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Printf("transport: listening on http://%s (/status /metrics)\n", ln.Addr())
	select {
	case <-ctx.Done():
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = srv.Shutdown(shutCtx)
		fmt.Println("transport: shut down")
		return nil
	case err := <-serveErr:
		return err
	}
}

// syncTransportMetrics mirrors the transport's monotonic snapshot into
// the obs registry (counters advance by delta; the queue high-water mark
// is a gauge).
func syncTransportMetrics(m *obs.Metrics, fn *channel.FaultyNetwork, tb *experiments.Testbed) {
	s := fn.Stats()
	set := func(name, help string, v uint64) {
		c := m.Counter(name, help)
		if cur := c.Get(); v > cur {
			c.Add(v - cur)
		}
	}
	set("conman_transport_datagrams_sent_total", "UDP datagrams written", s.DatagramsSent)
	set("conman_transport_data_frames_total", "sequenced data frames (first transmissions)", s.DataFrames)
	set("conman_transport_batched_datagrams_total", "datagrams carrying more than one envelope", s.BatchedDatagrams)
	set("conman_transport_retransmits_total", "frame retransmissions", s.Retransmits)
	set("conman_transport_ack_only_total", "standalone ack frames", s.AckOnly)
	set("conman_transport_dup_frames_total", "duplicate frames deduplicated at receivers", s.DupFrames)
	set("conman_transport_envelopes_sent_total", "envelopes accepted for send", s.EnvelopesSent)
	set("conman_transport_envelopes_delivered_total", "envelopes delivered to handlers", s.EnvelopesDelivered)
	set("conman_transport_backlog_drops_total", "sends rejected with a full queue", s.BacklogDrops)
	set("conman_nm_call_retries_total", "NM request retransmissions", tb.NM.CallRetries())
	m.Gauge("conman_transport_queue_high_water", "peak per-peer send queue depth").Set(s.QueueHighWater)
}

// settleCounters polls the NM counters until several consecutive reads
// are identical (the CLI twin of the experiments' waitStableCounters).
func settleCounters(tb *experiments.Testbed, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	last := tb.NM.Counters()
	stable := 0
	for stable < 10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		cur := tb.NM.Counters()
		if cur == last {
			stable++
		} else {
			stable = 0
			last = cur
		}
	}
}

// benchTransportRows appends the transport benchmark rows:
//
//   - Transport/linear-udp n=128: wall clock to configure and verify the
//     GRE+IGP chain over real UDP sockets, clean vs seeded 5% loss +
//     reorder + jitter. The pair bounds the price of the reliability
//     layer under fire.
//   - Transport/lsa-burst n=512: datagrams needed to carry a 512-envelope
//     one-way burst, batched (64 envelopes per frame) vs unbatched (1 per
//     frame). Expanded records the exact data-frame count — deterministic
//     (512 is a multiple of the batch size, first transmissions only), so
//     the CI baseline gates it exactly, and the in-bench assertion keeps
//     batching worth at least 4x even without a baseline.
func benchTransportRows(results *[]benchResult) error {
	const linearN = 128
	for _, mode := range []string{"clean", "loss-5pct"} {
		best := time.Duration(0)
		for rep := 0; rep < 2; rep++ {
			el, err := benchTransportLinear(linearN, mode == "loss-5pct")
			if err != nil {
				return err
			}
			if best == 0 || el < best {
				best = el
			}
		}
		*results = append(*results, benchResult{
			Benchmark: "Transport", Scenario: "linear-udp", N: linearN, Mode: mode,
			Seconds: best.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "Transport/linear-udp n=%d %s: %v\n", linearN, mode, best)
	}

	const burst = 512
	frames := make(map[string]int)
	for _, mode := range []string{"batched", "unbatched"} {
		el, df, err := benchTransportBurst(burst, mode == "batched")
		if err != nil {
			return err
		}
		frames[mode] = df
		*results = append(*results, benchResult{
			Benchmark: "Transport", Scenario: "lsa-burst", N: burst, Mode: mode,
			Seconds: el.Seconds(), Expanded: df,
		})
		fmt.Fprintf(os.Stderr, "Transport/lsa-burst n=%d %s: %v (%d data frames)\n", burst, mode, el, df)
	}
	if frames["unbatched"] < 4*frames["batched"] {
		return fmt.Errorf("transport batching under 4x: %d unbatched vs %d batched frames for a %d-envelope burst",
			frames["unbatched"], frames["batched"], burst)
	}
	return nil
}

// benchTransportLinear configures the GRE+IGP chain over UDP and returns
// the wall clock to a verified data plane.
func benchTransportLinear(n int, lossy bool) (time.Duration, error) {
	cfg := channel.Config{FlushAge: time.Millisecond}
	var factory func(string) (channel.Endpoint, error)
	if lossy {
		fn := channel.NewFaultyNetwork(cfg, channel.FaultConfig{
			Seed: 42, Loss: 0.05, Reorder: 0.02, Jitter: time.Millisecond,
		})
		factory = func(name string) (channel.Endpoint, error) { return fn.Endpoint(name) }
	} else {
		un := channel.NewUDPNetworkConfig(cfg)
		factory = func(name string) (channel.Endpoint, error) { return un.Endpoint(name) }
	}
	sc := experiments.GREIGPScenario()
	tb, err := sc.BuildOver(n, factory)
	if err != nil {
		return 0, err
	}
	defer tb.Close()
	tb.NM.RetryInterval = 100 * time.Millisecond
	tb.NM.CallTimeout = 30 * time.Second
	start := time.Now()
	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		return 0, err
	}
	settleCounters(tb, 20*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		err = tb.VerifyConnectivity(uint32(98000 + time.Now().UnixNano()%1000))
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return 0, fmt.Errorf("bench transport n=%d lossy=%v: %w", n, lossy, err)
	}
	return time.Since(start), nil
}

// benchTransportBurst sends one burst of small envelopes across a clean
// UDP pair and returns the wall clock to full delivery plus the exact
// number of data frames the transport used.
func benchTransportBurst(burst int, batched bool) (time.Duration, int, error) {
	cfg := channel.Config{MaxBatchMsgs: 1, Window: 64}
	if batched {
		// FlushAge well above the enqueue time of the burst: every frame
		// fills completely, so the frame count is exactly burst/64.
		cfg = channel.Config{MaxBatchMsgs: 64, FlushAge: 50 * time.Millisecond, Window: 64}
	}
	un := channel.NewUDPNetworkConfig(cfg)
	src, err := un.Endpoint("src")
	if err != nil {
		return 0, 0, err
	}
	defer src.Close()
	dst, err := un.Endpoint("dst")
	if err != nil {
		return 0, 0, err
	}
	defer dst.Close()
	got := make(chan struct{})
	var seen atomic.Uint64 // handlers run on a concurrent pool
	dst.SetHandler(func(env msg.Envelope) {
		if seen.Add(1) == uint64(burst) {
			close(got)
		}
	})
	start := time.Now()
	for i := 0; i < burst; i++ {
		env := msg.MustNew(msg.TypeConvey, "src", "dst", 0, msg.Convey{Kind: fmt.Sprintf("lsa-%d", i)})
		if err := src.Send(env); err != nil {
			return 0, 0, err
		}
	}
	select {
	case <-got:
	case <-time.After(30 * time.Second):
		return 0, 0, fmt.Errorf("bench transport burst: %d/%d envelopes delivered", seen.Load(), burst)
	}
	el := time.Since(start)
	return el, int(un.Stats().DataFrames), nil
}
