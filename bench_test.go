// Benchmarks regenerating every table and figure of the paper's
// evaluation (§III), plus the ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package conman_test

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/experiments"
	"conman/internal/kernel"
	"conman/internal/legacy"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/nm"
	"conman/internal/packet"
)

// ---------------------------------------------------------------------------
// Tables

func BenchmarkTable3ShowPotential(b *testing.B) {
	tb, err := experiments.BuildFig4()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.NM.ShowPotential("A"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Count(b *testing.B) {
	// The counting itself (script building measured once in Fig benches).
	today := legacy.TodayGRE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = legacy.Count(today)
	}
}

func BenchmarkTable6Messages(b *testing.B) {
	for _, n := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.Table6([]int{n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figures

func BenchmarkFig5Graph(b *testing.B) {
	tb, err := experiments.BuildFig4()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nm.BuildGraph(tb.NM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Prune(b *testing.B) {
	tb, err := experiments.BuildFig4()
	if err != nil {
		b.Fatal(err)
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		b.Fatal(err)
	}
	goal := experiments.Fig4Goal()
	spec := nm.FindSpec{From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.FindPaths(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaths9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Paths9()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Paths) != 9 {
			b.Fatalf("got %d paths", len(res.Paths))
		}
	}
}

func BenchmarkFig7ConfigureGRE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8ConfigureMPLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ConfigureVLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)

func BenchmarkPathFinderPruning(b *testing.B) {
	tb, err := experiments.BuildFig4()
	if err != nil {
		b.Fatal(err)
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		b.Fatal(err)
	}
	goal := experiments.Fig4Goal()
	for _, cfg := range []struct {
		name     string
		noDomain bool
	}{
		{"with-domain-pruning", false},
		{"without-domain-pruning", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			spec := nm.FindSpec{
				From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
				DisableDomainPruning: cfg.noDomain,
			}
			var paths int
			for i := 0; i < b.N; i++ {
				ps, _, err := g.FindPaths(spec)
				if err != nil {
					b.Fatal(err)
				}
				paths = len(ps)
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

func BenchmarkChannelUDPvsFlood(b *testing.B) {
	b.Run("udp", func(b *testing.B) {
		net := channel.NewUDPNetwork()
		a, err := net.Endpoint("A")
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		nmEP, err := net.Endpoint(msg.NMName)
		if err != nil {
			b.Fatal(err)
		}
		defer nmEP.Close()
		got := make(chan struct{}, 1)
		nmEP.SetHandler(func(e msg.Envelope) { got <- struct{}{} })
		a.SetHandler(func(msg.Envelope) {})
		env := msg.MustNew(msg.TypeHello, "A", msg.NMName, 1, msg.Hello{Device: "A"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Send(env); err != nil {
				b.Fatal(err)
			}
			<-got
		}
	})
	b.Run("flood-3hop", func(b *testing.B) {
		net := netsim.New()
		nodes := map[core.DeviceID]*channel.FloodNode{}
		for _, id := range []core.DeviceID{"A", "B", "C"} {
			dev := id
			k := kernel.New(dev, kernel.RoleRouter,
				func(port string, frame []byte) error {
					return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
				},
				func(port string) (packet.MAC, bool) { return packet.MAC{}, true })
			net.AddDevice(dev, k)
			ports := []string{"eth0", "eth1"}
			for _, p := range ports {
				if _, err := net.AddPort(dev, p); err != nil {
					b.Fatal(err)
				}
				k.AddPhysical(p)
			}
			node := channel.NewFloodNode(dev,
				func(port string, frame []byte) error {
					return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
				},
				func() []string { return ports })
			k.RegisterEtherType(packet.EtherTypeMgmt, node.HandleMgmtFrame)
			nodes[id] = node
		}
		if _, err := net.Connect("ab", netsim.PortID{Device: "A", Name: "eth1"}, netsim.PortID{Device: "B", Name: "eth0"}); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Connect("bc", netsim.PortID{Device: "B", Name: "eth1"}, netsim.PortID{Device: "C", Name: "eth0"}); err != nil {
			b.Fatal(err)
		}
		var got int
		nodes["C"].Endpoint("C").SetHandler(func(msg.Envelope) { got++ })
		nodes["B"].Endpoint("B").SetHandler(func(msg.Envelope) {})
		a := nodes["A"].Endpoint("A")
		a.SetHandler(func(msg.Envelope) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Send(msg.MustNew(msg.TypeHello, "A", "C", uint64(i), nil)); err != nil {
				b.Fatal(err)
			}
		}
		if got != b.N {
			b.Fatalf("delivered %d of %d", got, b.N)
		}
	})
}

func BenchmarkDataPlaneForwarding(b *testing.B) {
	scenarios := []struct {
		name string
		cfg  func() (*experiments.Testbed, error)
		pref string
		vlan bool
	}{
		{"gre", experiments.BuildFig4, "GRE-IP tunnel", false},
		{"mpls", experiments.BuildFig4, "MPLS", false},
		{"vlan", experiments.BuildFig9, "VLAN tunnel", true},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			tb, err := sc.cfg()
			if err != nil {
				b.Fatal(err)
			}
			goal := experiments.Fig4Goal()
			if sc.vlan {
				goal = experiments.Fig9Goal()
			}
			if _, _, err := experiments.ConfigureVPN(tb, goal, sc.pref); err != nil {
				b.Fatal(err)
			}
			d := tb.Customer["D"]
			src, dst := netip.MustParseAddr("10.0.1.1"), netip.MustParseAddr("10.0.2.1")
			// Warm ARP caches.
			if err := d.SendProbeFrom(src, dst, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.SendProbeFrom(src, dst, uint32(i+10)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if got := len(tb.Customer["E"].ProbeEchoes()); got < b.N {
				b.Fatalf("delivered %d of %d", got, b.N)
			}
		})
	}
}

func BenchmarkPacketCodec(b *testing.B) {
	inner, _ := packet.Serialize(nil,
		packet.IPv4{TTL: 64, Proto: packet.ProtoProbe,
			Src: netip.MustParseAddr("10.0.1.1"), Dst: netip.MustParseAddr("10.0.2.1")},
		packet.Probe{Op: packet.ProbeEcho, Token: 1})
	gre := packet.GRE{KeyPresent: true, Key: 2001, SeqPresent: true, Seq: 1, ChecksumPresent: true, Proto: packet.EtherTypeIPv4}
	outer := packet.IPv4{TTL: 64, Proto: packet.ProtoGRE,
		Src: netip.MustParseAddr("204.9.168.1"), Dst: netip.MustParseAddr("204.9.169.1")}
	eth := packet.Ethernet{Type: packet.EtherTypeIPv4}
	b.Run("serialize-gre-stack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := packet.Serialize(inner, eth, outer, gre); err != nil {
				b.Fatal(err)
			}
		}
	})
	frame, _ := packet.Serialize(inner, eth, outer, gre)
	b.Run("decode-gre-stack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := packet.Decode(frame, packet.LayerTypeEthernet); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFindPath compares the two path-search engines on the L2
// chains whose variant space is exponential: the legacy
// enumerate-then-filter DFS (capped at DefaultMaxPaths) against the
// goal-directed best-first search. The "expanded" metric is the number
// of search states explored — the asymptotic win the best-first
// refactor buys on the NM's hottest code path.
func BenchmarkFindPath(b *testing.B) {
	sc, err := experiments.LinearScenarioByName("VLAN")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 64, 128} {
		g, base, err := sc.FindPathSpec(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []string{"exhaustive", "best-first"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				spec := base
				spec.Exhaustive = mode == "exhaustive"
				var stats nm.PruneStats
				for i := 0; i < b.N; i++ {
					p, s, err := g.FindBest(spec)
					if err != nil {
						b.Fatal(err)
					}
					if p == nil {
						b.Fatalf("no %q path at n=%d", sc.PathDesc, n)
					}
					stats = s
				}
				b.ReportMetric(float64(stats.Expanded), "expanded")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Scale suite: sequential vs concurrent NM on linear-n chains

// simRTT emulates the propagation delay of a real management channel
// (the paper's separate management NIC). Sequential configuration pays
// it once per message in series; the concurrent NM overlaps it.
const simRTT = 200 * time.Microsecond

func BenchmarkLinearDiscover(b *testing.B) {
	sc, err := experiments.LinearScenarioByName("GRE")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{32, 64} {
		for _, mode := range []string{"sequential", "concurrent"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				tb, err := sc.Build(n)
				if err != nil {
					b.Fatal(err)
				}
				tb.NM.Sequential = mode == "sequential"
				tb.NM.Workers = 64
				tb.Hub.SetLatency(simRTT)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := tb.NM.DiscoverAll(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkLinearConfigure(b *testing.B) {
	for _, cfg := range experiments.BenchApplyRows() {
		benchmarkLinearConfigure(b, cfg.Scenario, cfg.Ns)
	}
}

// BenchmarkStoreReconcile measures the incremental store's 1-dirty
// reconcile latency with k resident intents on the diamond-lite
// topology: submit one new intent, reconcile. The k=1 run is the floor;
// k=10000 staying within the same order of magnitude is the store's
// O(changed) contract (gated with real thresholds by `conman bench` and
// the CI baseline; this benchmark is for local profiling).
func BenchmarkStoreReconcile(b *testing.B) {
	for _, k := range []int{1, 10000} {
		b.Run(fmt.Sprintf("k=%d/1-dirty", k), func(b *testing.B) {
			tb, err := experiments.BuildDiamondLite(k + b.N)
			if err != nil {
				b.Fatal(err)
			}
			defer tb.Close()
			for j := 1; j <= k; j++ {
				if err := tb.NM.Submit(experiments.LiteIntent(j)); err != nil {
					b.Fatal(err)
				}
			}
			// First pass converges the store; second settles the VLAN
			// pipe-bind fallback so measurement starts from a quiet state.
			if _, err := tb.NM.Reconcile(); err != nil {
				b.Fatal(err)
			}
			if _, err := tb.NM.Reconcile(); err != nil {
				b.Fatal(err)
			}
			tb.Hub.SetLatency(simRTT)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tb.NM.Submit(experiments.LiteIntent(k + 1 + i)); err != nil {
					b.Fatal(err)
				}
				plan, err := tb.NM.Reconcile()
				if err != nil {
					b.Fatal(err)
				}
				if plan.Stats.FullRebuild || plan.Stats.Recompiled != 1 {
					b.Fatalf("1-dirty pass recompiled %d intents (full=%v)",
						plan.Stats.Recompiled, plan.Stats.FullRebuild)
				}
			}
		})
	}
}

func benchmarkLinearConfigure(b *testing.B, sc experiments.LinearScenario, ns []int) {
	for _, n := range ns {
		for _, mode := range []string{"sequential", "concurrent"} {
			b.Run(fmt.Sprintf("%s/n=%d/%s", sc.Name, n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					// Execution mutates device state, so each iteration
					// configures a freshly built chain.
					tb, err := sc.Build(n)
					if err != nil {
						b.Fatal(err)
					}
					tb.NM.Sequential = mode == "sequential"
					tb.NM.Workers = 64
					plan, err := sc.PlanLinear(tb, n)
					if err != nil {
						b.Fatal(err)
					}
					tb.Hub.SetLatency(simRTT)
					b.StartTimer()
					if err := tb.NM.Apply(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
