package conman_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRE matches the target of an inline Markdown link: [text](target).
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// skippedMarkdown lists Markdown files excluded from the link check:
// retrieved source material whose links point into repositories that
// were never vendored here.
var skippedMarkdown = map[string]bool{
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
}

// TestMarkdownLinks walks every Markdown file in the repository and
// verifies that each relative link resolves to a file or directory that
// exists. External (http/https/mailto) links and in-page anchors are
// not checked; anchors on relative links are stripped before resolving.
// This is the CI docs gate: a renamed example directory or a moved doc
// breaks the build, not the reader.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") && !skippedMarkdown[filepath.ToSlash(path)] {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	checked := 0
	for _, f := range mdFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q -> %s", f, m[1], resolved)
			}
			checked++
		}
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}
