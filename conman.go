// Package conman is a from-scratch Go reproduction of Ballani & Francis,
// "CONMan: A Step towards Network Manageability" (SIGCOMM 2007): a
// network architecture in which data-plane protocols expose a generic,
// protocol-agnostic management interface (the module abstraction), and a
// Network Manager configures entire networks by creating pipes and switch
// rules while the protocol implementations themselves derive every
// low-level parameter by talking to their peers over the management
// channel.
//
// The repository contains:
//
//   - the CONMan model and primitives (internal/core, internal/msg)
//   - three management-channel transports (internal/channel): in-process,
//     real UDP sockets, and a self-bootstrapping raw-Ethernet flood
//   - a byte-level simulated substrate (internal/netsim, internal/packet,
//     internal/kernel): Ethernet with ARP, IPv4 policy routing, GRE
//     tunnels, MPLS label switching, 802.1Q/QinQ bridging
//   - protocol modules wrapping that substrate (internal/modules)
//   - the Network Manager (internal/nm): topology discovery, potential
//     graph, path finder with encapsulation/domain pruning, compiler to
//     CONMan scripts, executor with message accounting
//   - "configuration today" scripts and the Table V metric
//     (internal/legacy)
//   - every table and figure of the paper's evaluation
//     (internal/experiments), regenerable via cmd/conman
//
// # Concurrency
//
// The NM fans configuration out across devices: DiscoverAll queries all
// devices on a bounded worker pool, and Execute groups DeviceScripts
// into dependency waves — scripts on distinct devices run concurrently,
// while a device appearing more than once keeps its batches in order.
// Module peering is unaffected because the initiator rule keys on module
// references, not arrival order, so the message Counters (Table VI) are
// byte-identical to sequential execution. Two knobs control this:
//
//   - NM.Sequential: set true to restore strict one-device-at-a-time
//     operation (the paper's original accounting mode, and a fallback
//     for channels that cannot carry concurrent traffic).
//   - NM.Workers: bounds the fan-out per wave; zero selects
//     nm.DefaultWorkers (16).
//
// Both are read without locking and must be set before the first
// DiscoverAll/Execute call. The whole stack (channel hub, device MAs,
// protocol modules, kernels, netsim) is safe under `go test -race` with
// concurrent NM calls. For experiments, Hub.SetLatency emulates a real
// management network's propagation delay; the BenchmarkLinearDiscover /
// BenchmarkLinearConfigure suites use it to compare the two modes on
// chains up to n=128.
//
// This facade re-exports the types most users need; see the examples/
// directory for runnable scenarios.
package conman

import (
	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/experiments"
	"conman/internal/nm"
)

// Core model types.
type (
	// DeviceID is a globally unique device identifier.
	DeviceID = core.DeviceID
	// ModuleRef is the <module name, module-id, device-id> tuple.
	ModuleRef = core.ModuleRef
	// Abstraction is the generic module self-description (Table II).
	Abstraction = core.Abstraction
	// ModuleState is the showActual view of a module.
	ModuleState = core.ModuleState
	// PipeID identifies a pipe.
	PipeID = core.PipeID
	// SwitchRule directs packet switching between two pipes.
	SwitchRule = core.SwitchRule
	// FilterRule is an abstract filter specification.
	FilterRule = core.FilterRule
)

// Manager types.
type (
	// NM is the CONMan network manager.
	NM = nm.NM
	// Goal is a high-level connectivity goal.
	Goal = nm.Goal
	// Path is a protocol-sane module-level path.
	Path = nm.Path
	// Graph is the potential-connectivity graph.
	Graph = nm.Graph
	// DeviceScript is a compiled per-device command batch.
	DeviceScript = nm.DeviceScript
	// Counters is the NM's Table VI message accounting.
	Counters = nm.Counters
)

// Testbed is a fully built simulated environment (network, devices,
// management channel, NM).
type Testbed = experiments.Testbed

// NewNM creates a network manager.
func NewNM() *NM { return nm.New() }

// NewHub creates an in-process management channel.
func NewHub() *channel.Hub { return channel.NewHub() }

// BuildGraph constructs the NM's potential-connectivity graph from
// discovered topology and abstractions.
func BuildGraph(n *NM) (*Graph, error) { return nm.BuildGraph(n) }

// SelectPath applies the paper's path selector (minimise pipes, prefer
// fast forwarding).
func SelectPath(paths []*Path) *Path { return nm.SelectPath(paths) }

// BuildFig4 constructs the paper's Fig 4 VPN testbed.
func BuildFig4() (*Testbed, error) { return experiments.BuildFig4() }

// BuildFig9 constructs the paper's Fig 9 switched (VLAN) testbed.
func BuildFig9() (*Testbed, error) { return experiments.BuildFig9() }

// Fig4Goal returns the §III-C site-to-site connectivity goal.
func Fig4Goal() Goal { return experiments.Fig4Goal() }

// Fig9Goal returns the VLAN tunnel goal.
func Fig9Goal() Goal { return experiments.Fig9Goal() }

// ConfigureVPN finds, compiles and executes a path for the goal; prefer
// selects a specific path flavour by description ("MPLS", "GRE-IP
// tunnel", "VLAN tunnel") or "" for the automatic selector.
func ConfigureVPN(tb *Testbed, goal Goal, prefer string) (*Path, []DeviceScript, error) {
	return experiments.ConfigureVPN(tb, goal, prefer)
}
