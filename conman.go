// Package conman is a from-scratch Go reproduction of Ballani & Francis,
// "CONMan: A Step towards Network Manageability" (SIGCOMM 2007): a
// network architecture in which data-plane protocols expose a generic,
// protocol-agnostic management interface (the module abstraction), and a
// Network Manager configures entire networks by creating pipes and switch
// rules while the protocol implementations themselves derive every
// low-level parameter by talking to their peers over the management
// channel.
//
// The repository contains:
//
//   - the CONMan model and primitives (internal/core, internal/msg)
//   - three management-channel transports (internal/channel): in-process,
//     real UDP sockets, and a self-bootstrapping raw-Ethernet flood
//   - a byte-level simulated substrate (internal/netsim, internal/packet,
//     internal/kernel): Ethernet with ARP, IPv4 policy routing, GRE
//     tunnels, MPLS label switching, 802.1Q/QinQ bridging
//   - protocol modules wrapping that substrate (internal/modules)
//   - the Network Manager (internal/nm): topology discovery, potential
//     graph, path finder with encapsulation/domain pruning, compiler to
//     CONMan scripts, wave executor, and the declarative Intent API
//   - "configuration today" scripts and the Table V metric
//     (internal/legacy)
//   - every table and figure of the paper's evaluation
//     (internal/experiments), regenerable via cmd/conman
//
// # The Intent API
//
// The NM's public surface is declarative, mirroring the paper's model of
// a manager that holds high-level goals and (re)derives configuration
// from them (§II, §IV). An Intent names a connectivity Goal plus
// tradeoffs; the lifecycle is:
//
//	plan, err := nm.Plan(intent)   // diff desired vs observed state
//	fmt.Print(plan.Render())       // dry run: every pending command
//	err = nm.Apply(plan)           // reconcile: delete stale, create missing
//	_, err = nm.Destroy(intent)    // tear the configuration back down
//
// Plan compiles the intent's chosen path into per-device scripts, reads
// the actual state of every device on the path (showActual) and keeps
// only the difference: missing pipes and switch rules become create
// batches, stale components (from an earlier intent, or a pipe whose
// endpoints changed) become delete batches via the delete() primitive.
// Planning sends no configuration commands, so a Plan doubles as a dry
// run. Apply is idempotent — after a successful Apply, a fresh Plan for
// the same intent is empty and re-applying it sends zero commands. The
// same loop heals partial failure (kill a pipe: the next Plan recreates
// it and its dependent rules) and expresses A->B->A reconfiguration
// between path flavours (GRE <-> MPLS), which the previous one-shot
// DiscoverAll/FindPaths/Compile/Execute chain could not. Compile and
// Execute remain available as the underlying engine.
//
// # The intent store
//
// Above the per-intent lifecycle sits the intent store — the paper's
// "NM holds all the goals" model:
//
//	err = nm.Submit(intentA)       // register goals; sends nothing
//	err = nm.Submit(intentB)
//	plan, err := nm.PlanStore()    // dry run of the union of all goals
//	splan, err := nm.Reconcile()   // reconcile the network to the union
//	err = nm.Withdraw("intent-a")  // unregister; next Reconcile prunes
//
// Reconcile compiles every registered intent, merges the desired
// configuration per device — pipes and switch rules are deduplicated by
// content and refcounted across goals — and diffs the union against
// observed state in a single sweep. Components shared between goals
// (two VPNs crossing the same transit switches) are configured once and
// survive until their last owner is withdrawn; withdrawing one goal
// removes exactly its unshared components. Reconcile is idempotent:
// reconciling again immediately sends zero commands. See
// examples/multi-intent and `conman submit|reconcile|withdraw`.
//
// # Concurrency
//
// The NM fans work out across devices: DiscoverAll and Plan's state
// observation query all devices on a bounded worker pool, and Apply
// groups batches into dependency waves — batches on distinct devices
// run concurrently, while a device appearing more than once keeps its
// batches in order. Module peering is unaffected because the initiator
// rule keys on module references, not arrival order, so the message
// Counters (Table VI) are byte-identical to sequential execution. Two
// knobs control this:
//
//   - NM.Sequential: set true to restore strict one-device-at-a-time
//     operation (the paper's original accounting mode, and a fallback
//     for channels that cannot carry concurrent traffic).
//   - NM.Workers: bounds the fan-out per wave; zero selects
//     nm.DefaultWorkers (16).
//
// Both are read without locking and must be set before the first
// DiscoverAll/Plan/Apply call. The whole stack (channel hub, device MAs,
// protocol modules, kernels, netsim) is safe under `go test -race` with
// concurrent NM calls; netsim.Network.Flush provides a quiescence
// barrier for concurrent data-plane probes. For experiments,
// Hub.SetLatency emulates a real management network's propagation
// delay, and the linear testbeds can run their management plane over
// real UDP sockets (experiments.EndpointFactory). The NM message log
// records per-stream sequence numbers and merges them canonically, so
// Fig 3-style traces are byte-reproducible under the concurrent
// executor.
//
// This facade re-exports the types most users need; see the examples/
// directory for runnable scenarios.
package conman

import (
	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/experiments"
	"conman/internal/nm"
	"conman/internal/topo"
)

// Core model types.
type (
	// DeviceID is a globally unique device identifier.
	DeviceID = core.DeviceID
	// ModuleRef is the <module name, module-id, device-id> tuple.
	ModuleRef = core.ModuleRef
	// Abstraction is the generic module self-description (Table II).
	Abstraction = core.Abstraction
	// ModuleState is the showActual view of a module.
	ModuleState = core.ModuleState
	// PipeID identifies a pipe.
	PipeID = core.PipeID
	// SwitchRule directs packet switching between two pipes.
	SwitchRule = core.SwitchRule
	// FilterRule is an abstract filter specification.
	FilterRule = core.FilterRule
	// DeleteRequest identifies a component for NM.Delete.
	DeleteRequest = core.DeleteRequest
)

// Component kinds for DeleteRequest.
const (
	ComponentPipe       = core.ComponentPipe
	ComponentSwitchRule = core.ComponentSwitchRule
)

// Ref constructs a ModuleRef.
func Ref(name core.ModuleName, dev DeviceID, mod core.ModuleID) ModuleRef {
	return core.Ref(name, dev, mod)
}

// Well-known module names.
const (
	NameETH  = core.NameETH
	NameIPv4 = core.NameIPv4
	NameGRE  = core.NameGRE
	NameMPLS = core.NameMPLS
	NameVLAN = core.NameVLAN
	NameIGP  = core.NameIGP
)

// Manager types.
type (
	// NM is the CONMan network manager.
	NM = nm.NM
	// Intent is a declarative connectivity intent (desired state).
	Intent = nm.Intent
	// Plan is the reconciliation diff computed by NM.Plan.
	Plan = nm.Plan
	// StorePlan is the store-wide reconciliation diff computed by
	// NM.PlanStore over every registered intent.
	StorePlan = nm.StorePlan
	// IntentView is one intent's slice of a StorePlan.
	IntentView = nm.IntentView
	// Goal is a high-level connectivity goal.
	Goal = nm.Goal
	// Path is a protocol-sane module-level path.
	Path = nm.Path
	// Graph is the potential-connectivity graph.
	Graph = nm.Graph
	// DeviceScript is a compiled per-device command batch.
	DeviceScript = nm.DeviceScript
	// Counters is the NM's Table VI message accounting.
	Counters = nm.Counters
	// FindSpec describes a path search (endpoints, traffic domain,
	// preferred flavour, engine selection).
	FindSpec = nm.FindSpec
	// PruneStats counts why the path search abandoned branches and how
	// many states it expanded.
	PruneStats = nm.PruneStats
	// ConflictError reports two registered intents whose rules classify
	// the same traffic to different targets (returned by Reconcile).
	ConflictError = nm.ConflictError
	// Daemon is the autonomous reconciliation loop: it subscribes to
	// the NM's event feed (notifies, §II-E dependency triggers,
	// topology re-reports), debounces them into a dirty set, and drives
	// Reconcile until the network converges — failures heal with no
	// caller.
	Daemon = nm.Daemon
	// DaemonConfig tunes the daemon's debounce, backoff, optional audit
	// polling, logging and metrics. Zero values select defaults.
	DaemonConfig = nm.DaemonConfig
	// DaemonStatus is the daemon's health snapshot (the /status
	// document).
	DaemonStatus = nm.DaemonStatus
)

// Testbed is a fully built simulated environment (network, devices,
// management channel, NM).
type Testbed = experiments.Testbed

// SharedPair is one customer pair of a shared-core testbed, with its
// ready-made connectivity goal (customer edge ports pinned).
type SharedPair = experiments.SharedPair

// NewNM creates a network manager.
func NewNM() *NM { return nm.New() }

// NewDaemon builds an autonomous reconciliation daemon over an NM.
// Call Run to start the control loop (Testbed.StartDaemon wraps both).
func NewDaemon(n *NM, cfg DaemonConfig) *Daemon { return nm.NewDaemon(n, cfg) }

// NewHub creates an in-process management channel.
func NewHub() *channel.Hub { return channel.NewHub() }

// BuildGraph constructs the NM's potential-connectivity graph from
// discovered topology and abstractions.
func BuildGraph(n *NM) (*Graph, error) { return nm.BuildGraph(n) }

// SelectPath applies the paper's path selector (minimise pipes, prefer
// fast forwarding).
func SelectPath(paths []*Path) *Path { return nm.SelectPath(paths) }

// FindBest runs the goal-directed best-first path search: the single
// best path under the paper's selection metric (or the best of the
// spec's preferred flavour) without materialising the variant space.
// spec.Exhaustive reroutes through the legacy enumerator for A/B runs.
func FindBest(g *Graph, spec FindSpec) (*Path, PruneStats, error) { return g.FindBest(spec) }

// PreferRecognized reports whether a preference string belongs to a
// flavour family the goal-directed pruner understands; unrecognised
// strings run undirected and are flagged via PruneStats.PreferUnknown.
func PreferRecognized(prefer string) bool { return nm.PreferRecognized(prefer) }

// BuildFig4 constructs the paper's Fig 4 VPN testbed.
func BuildFig4() (*Testbed, error) { return experiments.BuildFig4() }

// BuildFig9 constructs the paper's Fig 9 switched (VLAN) testbed.
func BuildFig9() (*Testbed, error) { return experiments.BuildFig9() }

// BuildDiamondShared constructs the shared-core diamond testbed of the
// multi-intent scenarios: k customer pairs on two edge switches, two
// equivalent transit switches, one VLAN tunnel domain. Every pair's VPN
// crosses the same managed devices, which is exactly the workload the
// NM's intent store (Submit / Withdraw / Reconcile) exists for.
func BuildDiamondShared(k int) (*Testbed, []SharedPair, error) {
	return experiments.BuildDiamondShared(k)
}

// BuildLinearGREIGP constructs the GRE chain of n routers with an IGP
// routing control module (§II-F) on every router: the compiled
// configuration includes one pipe per IGP adjacency, the modules flood
// link state and install the transit routes, and the tunnel forwards
// end-to-end at any n (the plain chain only delivers at n=3).
func BuildLinearGREIGP(n int) (*Testbed, error) { return experiments.BuildLinearGREIGP(n) }

// BuildDiamondGRE constructs the routed diamond of the GRE reroute
// scenarios: two edge routers, two equivalent transit arms, IGP control
// modules throughout. Cutting the active arm's wire reroutes the tunnel
// over the other arm and the IGP re-converges.
func BuildDiamondGRE() (*Testbed, error) { return experiments.BuildDiamondGRE() }

// DiamondGREGoal returns the site-to-site goal across the GRE diamond.
func DiamondGREGoal() Goal { return experiments.DiamondGREGoal() }

// Fig4Goal returns the §III-C site-to-site connectivity goal.
func Fig4Goal() Goal { return experiments.Fig4Goal() }

// Fig9Goal returns the VLAN tunnel goal.
func Fig9Goal() Goal { return experiments.Fig9Goal() }

// VPNIntent wraps a goal as a declarative intent; prefer pins a path
// flavour by description ("MPLS", "GRE-IP tunnel", "VLAN tunnel") or ""
// for the paper's automatic selector.
func VPNIntent(goal Goal, prefer string) Intent { return experiments.VPNIntent(goal, prefer) }

// ConfigureVPN plans and applies an intent for the goal in one call;
// prefer selects a specific path flavour by description or "" for the
// automatic selector. Equivalent to NM.Plan + NM.Apply.
func ConfigureVPN(tb *Testbed, goal Goal, prefer string) (*Path, []DeviceScript, error) {
	return experiments.ConfigureVPN(tb, goal, prefer)
}

// Wiring is a generated fabric blueprint: devices with their trunk
// ports, named wires, and the customer-eligible edge devices, all in
// deterministic order (internal/topo).
type Wiring = topo.Wiring

// TopoPair is one intent endpoint pair of a generated fabric.
type TopoPair = topo.Pair

// FatTree generates a k-ary fat-tree/Clos fabric (k even): k pods of
// edge and aggregation switches under (k/2)^2 cores.
func FatTree(k int) (*Wiring, error) { return topo.FatTree(k) }

// Ring generates a cycle of n switches; intents pair diametrically
// opposite devices.
func Ring(n int) (*Wiring, error) { return topo.Ring(n) }

// Torus generates a rows x cols 2D torus with wraparound, degree 4
// everywhere.
func Torus(rows, cols int) (*Wiring, error) { return topo.Torus(rows, cols) }

// Waxman generates a connected random graph with the classic Waxman
// edge probability, deterministic per seed.
func Waxman(n int, alpha, beta float64, seed int64) (*Wiring, error) {
	return topo.Waxman(n, alpha, beta, seed)
}

// BuildTopoVLAN realises a generated wiring as a full switched testbed
// carrying pairsN customer pairs, each with sites, QinQ edge ports and
// a ready-made VLAN tunnel goal.
func BuildTopoVLAN(w *Wiring, pairsN int) (*Testbed, []SharedPair, error) {
	return experiments.BuildTopoVLAN(w, pairsN)
}

// ChaosSpec is one seeded multi-failure episode: how many wires,
// devices and applied pipes to kill concurrently, under a min-cut
// guard that never strands a protected intent pair.
type ChaosSpec = experiments.ChaosSpec

// ChaosReport lists what an episode actually killed.
type ChaosReport = experiments.ChaosReport
